//! Request/flag parameter parsing shared by the CLI and the server.
//!
//! One [`Args`] type backs both surfaces: the CLI feeds it
//! `--flag value` tokens from `std::env::args`, the server feeds it
//! `flag=value` pairs from the query string and the request body (the
//! pairs are rewritten into the same flag form, so `scale=0.02` on the
//! wire and `--scale 0.02` on the command line parse identically).
//!
//! Parsing **never exits the process** — every accessor returns
//! `Result<_, String>` so the CLI can turn an error into a clean
//! `ExitCode` (running destructors on the way out) and the server can
//! turn the same error into a `400`.

/// Parsed flags and positionals.
///
/// Lookup is first-match: when a flag is repeated, the earliest
/// occurrence wins ([`Args::get`]); [`Args::get_all`] exposes every
/// occurrence. The server relies on first-match to give query-string
/// parameters precedence over request-body parameters.
#[derive(Clone, Debug, Default)]
pub struct Args {
    /// Non-flag tokens, in order (the CLI's subcommand and operands).
    pub positional: Vec<String>,
    flags: Vec<(String, Option<String>)>,
}

impl Args {
    /// Parses a CLI-style token stream. A token after `--name` becomes
    /// that flag's value unless it is itself a flag; a leading-dash
    /// value that is not a flag (e.g. `--budget -5`) is kept as a
    /// value.
    pub fn parse(raw: impl Iterator<Item = String>) -> Self {
        let mut positional = Vec::new();
        let mut flags = Vec::new();
        let mut raw = raw.peekable();
        while let Some(a) = raw.next() {
            if let Some(name) = a.strip_prefix("--") {
                let value = raw
                    .peek()
                    .filter(|v| !v.starts_with("--"))
                    .cloned()
                    .inspect(|_| {
                        raw.next();
                    });
                flags.push((name.to_owned(), value));
            } else {
                positional.push(a);
            }
        }
        Args { positional, flags }
    }

    /// Parses a `key=value&key2=value2` query or form-body string.
    /// Keys and values are percent-decoded (`+` is a space); a key
    /// without `=` becomes a valueless flag, mirroring `--flag` with no
    /// value.
    pub fn from_query(query: &str) -> Self {
        let mut args = Args::default();
        args.extend_from_query(query);
        args
    }

    /// Parses the query string and body of one request. Query pairs are
    /// appended first, so they take precedence under first-match
    /// lookup.
    pub fn from_request(query: &str, body: &str) -> Self {
        let mut args = Args::default();
        args.extend_from_query(query);
        args.extend_from_query(body);
        args
    }

    fn extend_from_query(&mut self, query: &str) {
        for pair in query.split('&').filter(|p| !p.is_empty()) {
            match pair.split_once('=') {
                Some((k, v)) => self
                    .flags
                    .push((percent_decode(k), Some(percent_decode(v)))),
                None => self.flags.push((percent_decode(pair), None)),
            }
        }
    }

    /// First value of `name`, if the flag is present with a value.
    pub fn get(&self, name: &str) -> Option<&str> {
        self.flags
            .iter()
            .find(|(n, _)| n == name)
            .and_then(|(_, v)| v.as_deref())
    }

    /// Every value of `name`, in order (valueless occurrences are
    /// skipped).
    pub fn get_all(&self, name: &str) -> Vec<&str> {
        self.flags
            .iter()
            .filter(|(n, _)| n == name)
            .filter_map(|(_, v)| v.as_deref())
            .collect()
    }

    /// Whether `name` appears at all (with or without a value).
    pub fn has(&self, name: &str) -> bool {
        self.flags.iter().any(|(n, _)| n == name)
    }

    /// Flag names that are not in `known` — the server rejects these
    /// with a `400` so typos fail loudly instead of silently defaulting.
    pub fn unknown_flags(&self, known: &[&str]) -> Vec<&str> {
        self.flags
            .iter()
            .map(|(n, _)| n.as_str())
            .filter(|n| !known.contains(n))
            .collect()
    }

    /// `--scale` in `(0, 1]`, defaulting to 0.01.
    pub fn scale(&self) -> Result<f64, String> {
        let Some(raw) = self.get("scale") else {
            return Ok(0.01);
        };
        match raw.parse::<f64>() {
            Ok(s) if s > 0.0 && s <= 1.0 => Ok(s),
            Ok(s) => Err(format!("scale must be in (0, 1], got {s}")),
            Err(_) => Err(format!("scale expects a number, got '{raw}'")),
        }
    }

    /// `--seed`, defaulting to the Turbo-Eagle preset seed.
    pub fn seed(&self) -> Result<u64, String> {
        let Some(raw) = self.get("seed") else {
            return Ok(scap::CaseStudy::default_seed());
        };
        raw.parse::<u64>()
            .map_err(|_| format!("seed expects an unsigned integer, got '{raw}'"))
    }

    /// `--threads`, a positive worker count, if present.
    pub fn threads(&self) -> Result<Option<usize>, String> {
        let Some(raw) = self.get("threads") else {
            return Ok(None);
        };
        match raw.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(Some(n)),
            _ => Err(format!("threads expects a positive integer, got '{raw}'")),
        }
    }

    /// A positive-integer flag with a default.
    pub fn usize_flag(&self, name: &str, default: usize) -> Result<usize, String> {
        let Some(raw) = self.get(name) else {
            return Ok(default);
        };
        match raw.parse::<usize>() {
            Ok(n) if n >= 1 => Ok(n),
            _ => Err(format!("{name} expects a positive integer, got '{raw}'")),
        }
    }

    /// A finite-float flag, if present.
    pub fn f64_flag(&self, name: &str) -> Result<Option<f64>, String> {
        let Some(raw) = self.get(name) else {
            return Ok(None);
        };
        match raw.parse::<f64>() {
            Ok(v) if v.is_finite() => Ok(Some(v)),
            _ => Err(format!("{name} expects a finite number, got '{raw}'")),
        }
    }
}

/// Decodes `%XX` escapes and `+`-as-space. Malformed escapes pass
/// through literally (a request parameter is never a reason to panic).
pub fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            b'%' => match (hex_val(bytes.get(i + 1)), hex_val(bytes.get(i + 2))) {
                (Some(h), Some(l)) => {
                    out.push(h * 16 + l);
                    i += 3;
                }
                _ => {
                    out.push(b'%');
                    i += 1;
                }
            },
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

fn hex_val(b: Option<&u8>) -> Option<u8> {
    match b? {
        b @ b'0'..=b'9' => Some(b - b'0'),
        b @ b'a'..=b'f' => Some(b - b'a' + 10),
        b @ b'A'..=b'F' => Some(b - b'A' + 10),
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli(tokens: &[&str]) -> Args {
        Args::parse(tokens.iter().map(|s| s.to_string()))
    }

    #[test]
    fn parses_flags_and_positionals() {
        let args = cli(&["atpg", "--scale", "0.02", "--compact", "--stil", "out.stil"]);
        assert_eq!(args.positional, vec!["atpg"]);
        assert_eq!(args.scale().unwrap(), 0.02);
        assert!(args.has("compact"));
        assert_eq!(args.get("stil"), Some("out.stil"));
        assert_eq!(args.get("missing"), None);
    }

    #[test]
    fn flag_without_value_before_another_flag() {
        let args = cli(&["profile", "--compact", "--scale", "0.5"]);
        assert!(args.has("compact"));
        assert_eq!(args.get("compact"), None);
        assert_eq!(args.scale().unwrap(), 0.5);
    }

    #[test]
    fn negative_number_is_a_value_not_a_flag() {
        let args = cli(&["schedule", "--budget", "-5.5"]);
        assert_eq!(args.get("budget"), Some("-5.5"));
        // …and it parses (the range check is the caller's policy).
        assert_eq!(args.f64_flag("budget").unwrap(), Some(-5.5));
        assert!(args.positional == vec!["schedule"]);
    }

    #[test]
    fn repeated_flags_first_wins_and_all_are_kept() {
        let args = cli(&["x", "--scale", "0.5", "--scale", "0.25"]);
        assert_eq!(args.get("scale"), Some("0.5"));
        assert_eq!(args.scale().unwrap(), 0.5);
        assert_eq!(args.get_all("scale"), vec!["0.5", "0.25"]);
    }

    #[test]
    fn trailing_positional_after_flags() {
        let args = cli(&["--threads", "2", "evaluate", "extra"]);
        assert_eq!(args.positional, vec!["evaluate", "extra"]);
        assert_eq!(args.threads().unwrap(), Some(2));
    }

    #[test]
    fn default_scale_and_seed_when_absent() {
        let args = cli(&["generate"]);
        assert_eq!(args.scale().unwrap(), 0.01);
        assert_eq!(args.seed().unwrap(), scap::CaseStudy::default_seed());
    }

    #[test]
    fn malformed_values_error_without_exiting() {
        assert!(cli(&["--scale", "zero"]).scale().is_err());
        assert!(cli(&["--scale", "2.0"]).scale().is_err());
        assert!(cli(&["--scale", "-0.1"]).scale().is_err());
        assert!(cli(&["--threads", "0"]).threads().is_err());
        assert!(cli(&["--seed", "-1"]).seed().is_err());
        assert!(cli(&["--budget", "nan"]).f64_flag("budget").is_err());
    }

    #[test]
    fn query_pairs_parse_like_flags() {
        let args = Args::from_query("scale=0.02&flow=conventional&compact");
        assert_eq!(args.scale().unwrap(), 0.02);
        assert_eq!(args.get("flow"), Some("conventional"));
        assert!(args.has("compact"));
        assert_eq!(args.get("compact"), None);
    }

    #[test]
    fn query_takes_precedence_over_body() {
        let args = Args::from_request("scale=0.5", "scale=0.25&fill=fill-0");
        assert_eq!(args.scale().unwrap(), 0.5);
        assert_eq!(args.get("fill"), Some("fill-0"));
    }

    #[test]
    fn percent_decoding_handles_escapes_and_plus() {
        assert_eq!(percent_decode("a+b%20c"), "a b c");
        assert_eq!(percent_decode("100%"), "100%");
        assert_eq!(percent_decode("%zz"), "%zz");
        let args = Args::from_query("name=B%35");
        assert_eq!(args.get("name"), Some("B5"));
    }

    #[test]
    fn unknown_flags_are_reported() {
        let args = Args::from_query("scale=0.01&sacle=0.02");
        assert_eq!(args.unknown_flags(&["scale", "seed"]), vec!["sacle"]);
        assert!(Args::from_query("scale=1")
            .unknown_flags(&["scale"])
            .is_empty());
    }
}
