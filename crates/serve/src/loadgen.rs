//! Tiny std-only HTTP client + load generator.
//!
//! The integration tests (and the `scap-loadgen` binary wired into
//! `scripts/check.sh`) exercise the server with this client rather than
//! an external tool: the build environment is offline, so `curl`-shaped
//! dependencies are out. It speaks exactly the dialect the server
//! emits — one exchange per connection, `Connection: close`,
//! `Content-Length` bodies.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed response from the server.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header of this lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (panics on invalid UTF-8 — server bodies are
    /// always JSON text).
    pub fn text(&self) -> &str {
        std::str::from_utf8(&self.body).expect("server bodies are UTF-8")
    }
}

/// `GET path` against `addr`.
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<ClientResponse> {
    request(addr, "GET", path, "")
}

/// `POST path` with a `k=v&k2=v2` form body against `addr`.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<ClientResponse> {
    request(addr, "POST", path, body)
}

/// One full HTTP exchange: connect, send, read to EOF, parse.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect_timeout(&addr, Duration::from_secs(5))?;
    stream.set_read_timeout(Some(Duration::from_secs(120)))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response"))
}

fn parse_response(raw: &[u8]) -> Option<ClientResponse> {
    let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&raw[..head_end]).ok()?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next()?;
    let status: u16 = status_line.split_ascii_whitespace().nth(1)?.parse().ok()?;
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_owned()))
        .collect();
    Some(ClientResponse {
        status,
        headers,
        body: raw[head_end + 4..].to_vec(),
    })
}

/// Outcome of one [`burst`]: every response (in completion order) plus
/// transport-level failures.
#[derive(Debug, Default)]
pub struct BurstReport {
    /// Status code of every completed exchange.
    pub statuses: Vec<u16>,
    /// Bodies of the `200` responses.
    pub ok_bodies: Vec<Vec<u8>>,
    /// Connections that failed at the transport level.
    pub transport_errors: usize,
}

impl BurstReport {
    /// How many exchanges returned this status.
    pub fn count(&self, status: u16) -> usize {
        self.statuses.iter().filter(|&&s| s == status).count()
    }
}

/// Fires `concurrency` threads, each performing `per_thread` sequential
/// exchanges of `method path body`, and aggregates the outcomes. Every
/// connection gets *some* verdict: a status or a transport error —
/// nothing is silently lost.
pub fn burst(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    concurrency: usize,
    per_thread: usize,
) -> BurstReport {
    let handles: Vec<_> = (0..concurrency.max(1))
        .map(|_| {
            let (method, path, body) = (method.to_owned(), path.to_owned(), body.to_owned());
            std::thread::spawn(move || {
                let mut outcomes = Vec::new();
                for _ in 0..per_thread.max(1) {
                    outcomes.push(request(addr, &method, &path, &body));
                }
                outcomes
            })
        })
        .collect();
    let mut report = BurstReport::default();
    for h in handles {
        for outcome in h.join().expect("loadgen thread panicked") {
            match outcome {
                Ok(resp) => {
                    if resp.status == 200 {
                        report.ok_bodies.push(resp.body.clone());
                    }
                    report.statuses.push(resp.status);
                }
                Err(_) => report.transport_errors += 1,
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_well_formed_response() {
        let raw =
            b"HTTP/1.1 503 Service Unavailable\r\nretry-after: 1\r\ncontent-length: 3\r\n\r\n{}\n";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert_eq!(resp.text(), "{}\n");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_none());
        assert!(parse_response(b"HTTP/1.1 banana\r\n\r\n").is_none());
    }
}
