//! Tiny std-only HTTP client + load generator.
//!
//! The integration tests (and the `scap-loadgen` binary wired into
//! `scripts/check.sh`) exercise the server with this client rather than
//! an external tool: the build environment is offline, so `curl`-shaped
//! dependencies are out. It speaks exactly the dialect the server
//! emits — one exchange per connection, `Connection: close`,
//! `Content-Length` bodies.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::time::Duration;

/// One parsed response from the server.
#[derive(Clone, Debug)]
pub struct ClientResponse {
    /// HTTP status code.
    pub status: u16,
    /// Headers in arrival order, names lower-cased.
    pub headers: Vec<(String, String)>,
    /// Body bytes.
    pub body: Vec<u8>,
}

impl ClientResponse {
    /// First header of this lower-case name.
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(n, _)| n == name)
            .map(|(_, v)| v.as_str())
    }

    /// The body as UTF-8 (panics on invalid UTF-8 — server bodies are
    /// always JSON text).
    pub fn text(&self) -> &str {
        std::str::from_utf8(&self.body).expect("server bodies are UTF-8")
    }
}

/// `GET path` against `addr`.
pub fn get(addr: SocketAddr, path: &str) -> std::io::Result<ClientResponse> {
    request(addr, "GET", path, "")
}

/// `POST path` with a `k=v&k2=v2` form body against `addr`.
pub fn post(addr: SocketAddr, path: &str, body: &str) -> std::io::Result<ClientResponse> {
    request(addr, "POST", path, body)
}

/// One full HTTP exchange: connect, send, read to EOF, parse.
pub fn request(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
) -> std::io::Result<ClientResponse> {
    request_with_timeouts(
        addr,
        method,
        path,
        body,
        Duration::from_secs(5),
        Duration::from_secs(120),
    )
}

/// [`request`] with explicit connect/read timeouts — the cluster
/// coordinator's health prober needs much shorter ones than a client
/// willing to wait out a heavy analysis.
pub fn request_with_timeouts(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    connect_timeout: Duration,
    read_timeout: Duration,
) -> std::io::Result<ClientResponse> {
    let mut stream = TcpStream::connect_timeout(&addr, connect_timeout)?;
    stream.set_read_timeout(Some(read_timeout))?;
    write!(
        stream,
        "{method} {path} HTTP/1.1\r\nhost: {addr}\r\ncontent-length: {}\r\nconnection: close\r\n\r\n{body}",
        body.len()
    )?;
    stream.flush()?;
    let mut raw = Vec::new();
    stream.read_to_end(&mut raw)?;
    parse_response(&raw)
        .ok_or_else(|| std::io::Error::new(std::io::ErrorKind::InvalidData, "malformed response"))
}

fn parse_response(raw: &[u8]) -> Option<ClientResponse> {
    let head_end = raw.windows(4).position(|w| w == b"\r\n\r\n")?;
    let head = std::str::from_utf8(&raw[..head_end]).ok()?;
    let mut lines = head.split("\r\n");
    let status_line = lines.next()?;
    let status: u16 = status_line.split_ascii_whitespace().nth(1)?.parse().ok()?;
    let headers = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(n, v)| (n.trim().to_ascii_lowercase(), v.trim().to_owned()))
        .collect();
    Some(ClientResponse {
        status,
        headers,
        body: raw[head_end + 4..].to_vec(),
    })
}

/// Outcome of one [`burst`]: every response (in completion order) plus
/// transport-level failures and per-exchange latencies.
#[derive(Debug, Default)]
pub struct BurstReport {
    /// Status code of every completed exchange.
    pub statuses: Vec<u16>,
    /// Bodies of the `200` responses.
    pub ok_bodies: Vec<Vec<u8>>,
    /// Connections that failed at the transport level.
    pub transport_errors: usize,
    /// Wall-clock of every completed exchange, milliseconds, in the
    /// same (completion) order as [`BurstReport::statuses`].
    pub latencies_ms: Vec<f64>,
}

impl BurstReport {
    /// How many exchanges returned this status.
    pub fn count(&self, status: u16) -> usize {
        self.statuses.iter().filter(|&&s| s == status).count()
    }

    /// Latency at percentile `p` in `[0, 100]` (nearest-rank over the
    /// completed exchanges); `None` when nothing completed.
    pub fn percentile_ms(&self, p: f64) -> Option<f64> {
        if self.latencies_ms.is_empty() {
            return None;
        }
        let mut sorted = self.latencies_ms.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("latencies are finite"));
        let rank = ((p.clamp(0.0, 100.0) / 100.0) * sorted.len() as f64).ceil() as usize;
        Some(sorted[rank.saturating_sub(1).min(sorted.len() - 1)])
    }

    /// `(status, count)` pairs, ascending by status.
    pub fn status_breakdown(&self) -> Vec<(u16, usize)> {
        let mut codes: Vec<u16> = self.statuses.clone();
        codes.sort_unstable();
        codes.dedup();
        codes.into_iter().map(|c| (c, self.count(c))).collect()
    }
}

/// Fires `concurrency` threads, each performing `per_thread` sequential
/// exchanges of `method path body`, and aggregates the outcomes. Every
/// connection gets *some* verdict: a status or a transport error —
/// nothing is silently lost.
pub fn burst(
    addr: SocketAddr,
    method: &str,
    path: &str,
    body: &str,
    concurrency: usize,
    per_thread: usize,
) -> BurstReport {
    burst_targets(
        addr,
        method,
        &[(path.to_owned(), body.to_owned())],
        concurrency,
        per_thread,
    )
}

/// [`burst`] over a rotation of `(path, body)` targets: thread `t`
/// starts at target `t` and steps one target per exchange, so a round
/// of `concurrency ≥ targets.len()` threads has every target in flight
/// at once, and total coverage is balanced whenever
/// `concurrency × per_thread` is a multiple of `targets.len()`. This is
/// the cluster benchmark's access pattern: with K shard keys rotating
/// through, a worker set whose aggregate cache holds all K keys serves
/// at wire speed while a smaller one thrashes.
pub fn burst_targets(
    addr: SocketAddr,
    method: &str,
    targets: &[(String, String)],
    concurrency: usize,
    per_thread: usize,
) -> BurstReport {
    assert!(
        !targets.is_empty(),
        "burst_targets needs at least one target"
    );
    let handles: Vec<_> = (0..concurrency.max(1))
        .map(|t| {
            let method = method.to_owned();
            let targets = targets.to_vec();
            std::thread::spawn(move || {
                let mut outcomes = Vec::new();
                for j in 0..per_thread.max(1) {
                    let (path, body) = &targets[(t + j) % targets.len()];
                    let start = std::time::Instant::now();
                    let result = request(addr, &method, path, body);
                    outcomes.push((result, start.elapsed()));
                }
                outcomes
            })
        })
        .collect();
    let mut report = BurstReport::default();
    for h in handles {
        for (outcome, elapsed) in h.join().expect("loadgen thread panicked") {
            match outcome {
                Ok(resp) => {
                    if resp.status == 200 {
                        report.ok_bodies.push(resp.body.clone());
                    }
                    report.statuses.push(resp.status);
                    report.latencies_ms.push(elapsed.as_secs_f64() * 1e3);
                }
                Err(_) => report.transport_errors += 1,
            }
        }
    }
    report
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_a_well_formed_response() {
        let raw =
            b"HTTP/1.1 503 Service Unavailable\r\nretry-after: 1\r\ncontent-length: 3\r\n\r\n{}\n";
        let resp = parse_response(raw).unwrap();
        assert_eq!(resp.status, 503);
        assert_eq!(resp.header("retry-after"), Some("1"));
        assert_eq!(resp.text(), "{}\n");
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_response(b"not http").is_none());
        assert!(parse_response(b"HTTP/1.1 banana\r\n\r\n").is_none());
    }

    #[test]
    fn percentiles_use_nearest_rank() {
        let report = BurstReport {
            statuses: vec![200; 10],
            ok_bodies: Vec::new(),
            transport_errors: 0,
            latencies_ms: vec![10.0, 2.0, 7.0, 1.0, 9.0, 3.0, 8.0, 4.0, 6.0, 5.0],
        };
        assert_eq!(report.percentile_ms(50.0), Some(5.0));
        assert_eq!(report.percentile_ms(95.0), Some(10.0));
        assert_eq!(report.percentile_ms(99.0), Some(10.0));
        assert_eq!(report.percentile_ms(0.0), Some(1.0));
        assert_eq!(report.percentile_ms(100.0), Some(10.0));
        assert_eq!(BurstReport::default().percentile_ms(50.0), None);
    }

    #[test]
    fn status_breakdown_sorts_and_counts() {
        let report = BurstReport {
            statuses: vec![503, 200, 200, 400, 200],
            ok_bodies: Vec::new(),
            transport_errors: 1,
            latencies_ms: vec![1.0; 5],
        };
        assert_eq!(
            report.status_breakdown(),
            vec![(200, 3), (400, 1), (503, 1)]
        );
    }
}
