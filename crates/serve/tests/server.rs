//! End-to-end tests of the serving layer: a real listener on an
//! ephemeral port, the std-only loadgen client on the other side.
//!
//! The obs registry is process-global, so every test that asserts on
//! counters (or flips collection) takes the `serial()` lock — tests
//! within this binary run one at a time. Scales stay tiny (0.003–0.005):
//! the CI machine usually has a single CPU.

use scap_serve::loadgen;
use scap_serve::{ServeConfig, Server, ShutdownHandle};
use std::net::SocketAddr;
use std::sync::{Mutex, MutexGuard};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

const SCALE: &str = "0.003";

fn serial() -> MutexGuard<'static, ()> {
    static LOCK: Mutex<()> = Mutex::new(());
    LOCK.lock().unwrap_or_else(|e| e.into_inner())
}

/// Boots a server on an ephemeral port; returns its address, a shutdown
/// handle, and the join handle yielding the final metrics snapshot.
fn boot(cfg: ServeConfig) -> (SocketAddr, ShutdownHandle, JoinHandle<scap_obs::Snapshot>) {
    let server = Server::bind(ServeConfig {
        addr: "127.0.0.1:0".to_owned(),
        ..cfg
    })
    .expect("binding an ephemeral port");
    let addr = server.local_addr();
    let shutdown = server.shutdown_handle();
    let join = std::thread::spawn(move || server.run().expect("server run"));
    (addr, shutdown, join)
}

fn stop(shutdown: &ShutdownHandle, join: JoinHandle<scap_obs::Snapshot>) -> scap_obs::Snapshot {
    shutdown.signal();
    join.join().expect("server thread panicked")
}

#[test]
fn concurrent_identical_requests_build_once_and_agree_byte_for_byte() {
    let _guard = serial();
    let (addr, shutdown, join) = boot(ServeConfig {
        workers: 4,
        queue_depth: 16,
        ..ServeConfig::default()
    });

    // A seed unique to this test so the cache is cold and the
    // design-build counter delta is attributable.
    let before = scap_obs::snapshot();
    let query = format!("scale={SCALE}&seed=424242");
    let report = loadgen::burst(addr, "GET", &format!("/v1/design?{query}"), "", 4, 2);

    assert_eq!(report.transport_errors, 0);
    assert_eq!(report.count(200), 8, "statuses: {:?}", report.statuses);
    // Identical requests must agree byte-for-byte (the handler is a pure
    // function of the cached design).
    for body in &report.ok_bodies[1..] {
        assert_eq!(body, &report.ok_bodies[0]);
    }

    let after = scap_obs::snapshot();
    let delta = |name: &str| after.counter(name).unwrap_or(0) - before.counter(name).unwrap_or(0);
    assert_eq!(
        delta("serve.design_builds"),
        1,
        "single-flight: 8 cold requests, exactly 1 build"
    );
    // Identical requests dedupe at the *response* cache: one miss runs
    // the handler (which misses the design cache once underneath); each
    // of the other 7 resolves to exactly one response-cache hit — either
    // directly or after waiting on the in-flight build. The wait counter
    // is timing-dependent (one tick per condvar wakeup while the build
    // is still in flight), so it is not pinned here.
    assert_eq!(delta("serve.respcache.misses"), 1);
    assert_eq!(
        delta("serve.respcache.hits"),
        7,
        "the other 7 requests all resolve to response-cache hits"
    );
    assert_eq!(delta("serve.cache.misses"), 1);
    assert_eq!(
        delta("serve.cache.hits"),
        0,
        "only the one response-cache miss ever reached the design cache"
    );

    stop(&shutdown, join);
}

#[test]
fn saturated_queue_sheds_load_while_healthz_stays_responsive() {
    let _guard = serial();
    let (addr, shutdown, join) = boot(ServeConfig {
        workers: 1,
        queue_depth: 1,
        debug_endpoints: true,
        ..ServeConfig::default()
    });

    // The server runs in-process, so the test sequences admissions via
    // the shared obs counters — no sleep-and-hope races. First sleeper
    // occupies the single worker…
    let before = scap_obs::snapshot();
    let started = |snap: &scap_obs::Snapshot| {
        snap.counter("serve.jobs.started").unwrap_or(0)
            - before.counter("serve.jobs.started").unwrap_or(0)
    };
    let submitted = |snap: &scap_obs::Snapshot| {
        snap.counter("serve.jobs.submitted").unwrap_or(0)
            - before.counter("serve.jobs.submitted").unwrap_or(0)
    };
    let await_counts = |want_started: u64, want_submitted: u64, what: &str| {
        let t = Instant::now();
        loop {
            let snap = scap_obs::snapshot();
            if started(&snap) >= want_started && submitted(&snap) >= want_submitted {
                break;
            }
            assert!(t.elapsed() < Duration::from_secs(10), "timed out: {what}");
            std::thread::sleep(Duration::from_millis(10));
        }
    };
    let mut sleepers = Vec::new();
    sleepers.push(std::thread::spawn(move || {
        loadgen::get(addr, "/v1/sleep?ms=2500").unwrap()
    }));
    await_counts(1, 1, "first sleeper never started");
    // …then a second fills the 1-deep queue.
    sleepers.push(std::thread::spawn(move || {
        loadgen::get(addr, "/v1/sleep?ms=10").unwrap()
    }));
    await_counts(1, 2, "second sleeper never queued");
    let health = loadgen::get(addr, "/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert!(
        health.text().contains("\"queue_depth\":1"),
        "healthz: {}",
        health.text()
    );

    // The pool is saturated: the next job is shed with 503 + Retry-After.
    let shed = loadgen::get(addr, "/v1/sleep?ms=1").unwrap();
    assert_eq!(shed.status, 503);
    assert_eq!(shed.header("retry-after"), Some("1"));
    assert!(shed.text().contains("\"error\""));

    // …while the cheap endpoints answer immediately on the connection
    // thread.
    let t = Instant::now();
    let health = loadgen::get(addr, "/healthz").unwrap();
    assert_eq!(health.status, 200);
    assert!(
        t.elapsed() < Duration::from_millis(500),
        "healthz must not queue behind the saturated pool"
    );
    let metrics = loadgen::get(addr, "/metrics").unwrap();
    assert_eq!(metrics.status, 200);
    assert!(metrics.text().contains("\"serve.jobs.rejected\""));

    for s in sleepers {
        assert_eq!(s.join().unwrap().status, 200);
    }
    stop(&shutdown, join);
}

#[test]
fn missed_deadline_answers_504_and_abandons_the_job() {
    let _guard = serial();
    let (addr, shutdown, join) = boot(ServeConfig {
        workers: 1,
        queue_depth: 4,
        debug_endpoints: true,
        ..ServeConfig::default()
    });

    let before = scap_obs::snapshot();
    let late = loadgen::get(addr, "/v1/sleep?ms=1000&deadline_ms=50").unwrap();
    assert_eq!(late.status, 504);
    assert!(late.text().contains("deadline"));
    let after = scap_obs::snapshot();
    assert!(
        after.counter("serve.jobs.timed_out").unwrap_or(0)
            > before.counter("serve.jobs.timed_out").unwrap_or(0)
    );

    // The worker is still usable afterwards.
    let ok = loadgen::get(addr, "/v1/sleep?ms=1").unwrap();
    assert_eq!(ok.status, 200);
    stop(&shutdown, join);
}

#[test]
fn bad_requests_fail_fast_with_the_right_codes() {
    let _guard = serial();
    let (addr, shutdown, join) = boot(ServeConfig::default());

    // Unknown endpoint.
    assert_eq!(loadgen::get(addr, "/v1/nope").unwrap().status, 404);
    // Debug endpoint hidden unless enabled.
    assert_eq!(loadgen::get(addr, "/v1/sleep?ms=1").unwrap().status, 404);
    // Wrong method.
    let r = loadgen::post(addr, "/v1/design", "").unwrap();
    assert_eq!(r.status, 405);
    assert_eq!(r.header("allow"), Some("GET"));
    // Out-of-range scale.
    let r = loadgen::get(addr, "/v1/design?scale=2.0").unwrap();
    assert_eq!(r.status, 400);
    assert!(r.text().contains("scale"));
    // Typo'd parameter names are rejected, not silently defaulted.
    let r = loadgen::get(addr, &format!("/v1/design?scale={SCALE}&sacle=0.1")).unwrap();
    assert_eq!(r.status, 400);
    assert!(r.text().contains("sacle"));
    // Bad deadline.
    let r = loadgen::get(addr, "/v1/design?deadline_ms=soon").unwrap();
    assert_eq!(r.status, 400);

    stop(&shutdown, join);
}

#[test]
fn profile_schedule_and_lint_round_trip() {
    let _guard = serial();
    let (addr, shutdown, join) = boot(ServeConfig::default());
    let common = format!("scale={SCALE}&seed=77");

    let r = loadgen::post(addr, "/v1/profile", &format!("{common}&flow=conventional")).unwrap();
    assert_eq!(r.status, 200, "body: {}", r.text());
    for needle in [
        "\"flow\":\"conventional\"",
        "\"fill\":\"random-fill\"",
        "\"block\":\"B5\"",
        "\"threshold_mw\":",
        "\"series\":[",
    ] {
        assert!(r.text().contains(needle), "missing {needle}");
    }

    // Query parameters override body parameters.
    let r = loadgen::request(
        addr,
        "POST",
        &format!("/v1/profile?flow=noise-aware&{common}"),
        "flow=conventional",
    )
    .unwrap();
    assert_eq!(r.status, 200);
    assert!(r.text().contains("\"flow\":\"noise-aware\""));

    let r = loadgen::post(addr, "/v1/profile", &format!("{common}&block=B99")).unwrap();
    assert_eq!(r.status, 400);

    let r = loadgen::post(addr, "/v1/schedule", &format!("{common}&budget=5.0")).unwrap();
    assert_eq!(r.status, 200, "body: {}", r.text());
    assert!(r.text().contains("\"budget_mw\":5"));
    assert!(r.text().contains("\"sessions\":["));

    let r = loadgen::post(addr, "/v1/lint", &common).unwrap();
    assert_eq!(r.status, 200, "body: {}", r.text());
    assert!(r.text().contains("\"lint\":{"));
    assert!(r.text().contains("\"findings\":"));

    stop(&shutdown, join);
}

#[test]
fn graceful_shutdown_drains_in_flight_work_and_flushes_metrics() {
    let _guard = serial();
    let (addr, _shutdown, join) = boot(ServeConfig {
        workers: 1,
        queue_depth: 4,
        debug_endpoints: true,
        ..ServeConfig::default()
    });

    // Admit a slow job, then shut down via the API while it runs.
    let slow = std::thread::spawn(move || loadgen::get(addr, "/v1/sleep?ms=700").unwrap());
    std::thread::sleep(Duration::from_millis(100));
    let r = loadgen::post(addr, "/v1/shutdown", "").unwrap();
    assert_eq!(r.status, 200);
    assert!(r.text().contains("\"shutting_down\":true"));

    // The in-flight job is drained, not dropped.
    assert_eq!(slow.join().unwrap().status, 200);

    // run() returns the final snapshot — the "flush" — and it reflects
    // the traffic this test generated.
    let snap = join.join().expect("server thread panicked");
    assert!(snap.counter("serve.requests").unwrap_or(0) > 0);
    assert!(snap.counter("serve.req.shutdown").unwrap_or(0) > 0);

    // The listener is really closed: a fresh exchange must fail.
    assert!(loadgen::get(addr, "/healthz").is_err());
}
