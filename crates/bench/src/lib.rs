//! Shared fixtures for the benchmark harness.
//!
//! Every bench prints its paper-style rows once (outside the measured
//! region) and then benchmarks a representative kernel. The case study and
//! the two ATPG flows are expensive, so they are built once per process
//! and shared.
//!
//! The design scale defaults to `0.01` (≈230 flops) so the full
//! `cargo bench` sweep finishes in minutes; set `SCAP_BENCH_SCALE` to run
//! the evaluation at a larger size (e.g. `SCAP_BENCH_SCALE=0.05`).

use scap::flows::{self, FlowResult};
use scap::CaseStudy;
use std::sync::OnceLock;

/// The benchmark design scale (`SCAP_BENCH_SCALE`, default 0.01).
pub fn bench_scale() -> f64 {
    std::env::var("SCAP_BENCH_SCALE")
        .ok()
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.01)
}

/// The shared case study.
pub fn study() -> &'static CaseStudy {
    static STUDY: OnceLock<CaseStudy> = OnceLock::new();
    STUDY.get_or_init(|| {
        let scale = bench_scale();
        eprintln!("[scap-bench] building case-study SOC at scale {scale}");
        CaseStudy::new(scale)
    })
}

/// The shared conventional (random-fill) flow result.
pub fn conventional() -> &'static FlowResult {
    static CONV: OnceLock<FlowResult> = OnceLock::new();
    CONV.get_or_init(|| {
        eprintln!("[scap-bench] running conventional random-fill ATPG …");
        flows::conventional(study())
    })
}

/// The shared noise-aware flow result.
pub fn noise_aware() -> &'static FlowResult {
    static NA: OnceLock<FlowResult> = OnceLock::new();
    NA.get_or_init(|| {
        eprintln!("[scap-bench] running noise-aware staged ATPG …");
        flows::noise_aware(study())
    })
}
