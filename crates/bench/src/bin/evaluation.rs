//! One-shot regeneration of the paper's full evaluation.
//!
//! ```text
//! cargo run --release -p scap-bench --bin evaluation [scale]
//! ```
//!
//! Prints every table and figure of the DAC'07 paper at the requested
//! design scale (default 0.02 ≈ 460 flops; the paper's chip is scale 1.0).
//! The output of this binary is the source of `EXPERIMENTS.md`.
//!
//! Besides the human-readable report, the run writes
//! `BENCH_evaluation.json` (override the path with `SCAP_BENCH_JSON`):
//! per-stage wall-clock in milliseconds, the worker-thread count and the
//! design scale, so serial-vs-parallel comparisons are machine-checkable.

use scap::{ablation, experiments, flows, CaseStudy, PatternAnalyzer};
use std::time::Instant;

/// Per-stage wall-clock collector feeding `BENCH_evaluation.json`.
struct StageClock {
    stages: Vec<(&'static str, f64)>,
}

impl StageClock {
    fn new() -> Self {
        StageClock { stages: Vec::new() }
    }

    /// Runs `f`, recording its wall-clock under `name`.
    fn time<T>(&mut self, name: &'static str, f: impl FnOnce() -> T) -> T {
        let t = Instant::now();
        let out = f();
        self.stages.push((name, t.elapsed().as_secs_f64() * 1e3));
        out
    }

    /// Renders the collected stages as a JSON document. Hand-rolled:
    /// the workspace carries no JSON dependency, and the document is
    /// flat (no strings needing escapes).
    fn to_json(&self, scale: f64, threads: usize, total_ms: f64) -> String {
        let mut s = String::new();
        s.push_str("{\n");
        s.push_str(&format!("  \"scale\": {scale},\n"));
        s.push_str(&format!("  \"threads\": {threads},\n"));
        s.push_str(&format!("  \"total_ms\": {total_ms:.3},\n"));
        s.push_str("  \"stages\": [\n");
        for (i, (name, ms)) in self.stages.iter().enumerate() {
            let sep = if i + 1 == self.stages.len() { "" } else { "," };
            s.push_str(&format!(
                "    {{ \"name\": \"{name}\", \"ms\": {ms:.3} }}{sep}\n"
            ));
        }
        s.push_str("  ]\n}\n");
        s
    }
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.02);
    let threads = scap_exec::Executor::new().threads();
    let mut clock = StageClock::new();
    let t0 = Instant::now();
    println!("== scap-atpg evaluation @ scale {scale}, {threads} thread(s) ==\n");
    let study = clock.time("design", || CaseStudy::new(scale));

    // Tables 1 & 2.
    let report = clock.time("table1", || experiments::table1(&study));
    println!("{}", experiments::render_table1(&report));
    println!("{}", experiments::render_table2(&report));

    // Table 3 + thresholds.
    let t3 = clock.time("table3_statistical", || experiments::table3(&study));
    println!("{}", experiments::render_table3(&study, &t3));
    let b5 = study.design.block_named("B5").expect("B5 exists");
    let thr = clock.time("scap_thresholds", || {
        experiments::scap_thresholds(&study)[b5.index()]
    });
    println!("B5 SCAP screening threshold: {thr:.2} mW\n");

    // Flows.
    println!(
        "[{}s] running conventional random-fill ATPG …",
        t0.elapsed().as_secs()
    );
    let conventional = clock.time("flow_conventional", || flows::conventional(&study));
    println!(
        "[{}s] running noise-aware staged ATPG …",
        t0.elapsed().as_secs()
    );
    let noise_aware = clock.time("flow_noise_aware", || flows::noise_aware(&study));

    // Table 4.
    let t4 = clock.time("table4_cap_scap", || {
        experiments::table4(&study, &conventional)
    });
    println!("\n{}", experiments::render_table4(&t4));

    // Figures 2 & 6 (whole-set SCAP profiles — the parallel_map hot loop).
    let f2 = clock.time("fig2_scap_profile", || {
        experiments::fig2(&study, &conventional)
    });
    let f6 = clock.time("fig6_scap_profile", || {
        experiments::fig6(&study, &noise_aware)
    });
    println!(
        "{}",
        experiments::render_scap_series("Figure 2 (conventional B5 SCAP)", &f2)
    );
    println!(
        "{}",
        experiments::render_scap_series("Figure 6 (noise-aware B5 SCAP)", &f6)
    );
    for (label, start) in &noise_aware.steps {
        println!("  {label}: starts at pattern {start}");
    }

    // Figure 3 (two dynamic IR-drop solves).
    let f3 = clock.time("fig3_irdrop", || experiments::fig3(&study, &conventional));
    println!("\n{}", experiments::render_fig3(&study, &f3));

    // Figure 4.
    println!("{}", experiments::render_fig4(&conventional, &noise_aware));

    // Figure 5 pipeline smoke: one trace through the SCAP calculator.
    let analyzer = PatternAnalyzer::new(&study);
    let trace = analyzer.trace(&conventional.patterns.filled[0]);
    println!(
        "Figure 5 pipeline: pattern 0 -> {} toggles, STW {:.2} ns, chip SCAP {:.1} mW\n",
        trace.num_toggles(),
        trace.stw_ps() / 1000.0,
        analyzer.power_of_trace(&trace).chip_scap_vdd_mw()
    );

    // Figure 7.
    let f7 = clock.time("fig7_delay_scaling", || {
        experiments::fig7(&study, &noise_aware)
    });
    println!("{}", experiments::render_fig7(&f7));

    // Ablations.
    let rows = clock.time("ablation_fill_matrix", || {
        ablation::staged_fill_matrix(&study)
    });
    println!("{}", ablation::render_matrix(&rows));
    let sweep = clock.time("ablation_threshold_sweep", || {
        ablation::threshold_sensitivity(&study, &conventional, &[0.25, 0.5, 1.0, 2.0, 4.0])
    });
    println!("threshold sensitivity (factor -> conventional patterns above):");
    for (f, above) in &sweep {
        println!("  x{f:<5} {above}");
    }

    let total_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("\ntotal wall time: {:.0} s", total_ms / 1e3);
    let json = clock.to_json(scale, threads, total_ms);
    let path = std::env::var("SCAP_BENCH_JSON").unwrap_or_else(|_| "BENCH_evaluation.json".into());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("warning: cannot write {path}: {e}"),
    }
}
