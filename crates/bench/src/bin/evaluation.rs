//! One-shot regeneration of the paper's full evaluation.
//!
//! ```text
//! cargo run --release -p scap-bench --bin evaluation [scale]
//! ```
//!
//! Prints every table and figure of the DAC'07 paper at the requested
//! design scale (default 0.02 ≈ 460 flops; the paper's chip is scale 1.0).
//! The output of this binary is the source of `EXPERIMENTS.md`.

use scap::{ablation, experiments, flows, CaseStudy, PatternAnalyzer};

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.02);
    let t0 = std::time::Instant::now();
    println!("== scap-atpg evaluation @ scale {scale} ==\n");
    let study = CaseStudy::new(scale);

    // Tables 1 & 2.
    let report = experiments::table1(&study);
    println!("{}", experiments::render_table1(&report));
    println!("{}", experiments::render_table2(&report));

    // Table 3 + thresholds.
    let t3 = experiments::table3(&study);
    println!("{}", experiments::render_table3(&study, &t3));
    let b5 = study.design.block_named("B5").expect("B5 exists");
    let thr = experiments::scap_thresholds(&study)[b5.index()];
    println!("B5 SCAP screening threshold: {thr:.2} mW\n");

    // Flows.
    println!("[{}s] running conventional random-fill ATPG …", t0.elapsed().as_secs());
    let conventional = flows::conventional(&study);
    println!("[{}s] running noise-aware staged ATPG …", t0.elapsed().as_secs());
    let noise_aware = flows::noise_aware(&study);

    // Table 4.
    let t4 = experiments::table4(&study, &conventional);
    println!("\n{}", experiments::render_table4(&t4));

    // Figures 2 & 6.
    let f2 = experiments::fig2(&study, &conventional);
    let f6 = experiments::fig6(&study, &noise_aware);
    println!("{}", experiments::render_scap_series("Figure 2 (conventional B5 SCAP)", &f2));
    println!("{}", experiments::render_scap_series("Figure 6 (noise-aware B5 SCAP)", &f6));
    for (label, start) in &noise_aware.steps {
        println!("  {label}: starts at pattern {start}");
    }

    // Figure 3.
    let f3 = experiments::fig3(&study, &conventional);
    println!("\n{}", experiments::render_fig3(&study, &f3));

    // Figure 4.
    println!("{}", experiments::render_fig4(&conventional, &noise_aware));

    // Figure 5 pipeline smoke: one trace through the SCAP calculator.
    let analyzer = PatternAnalyzer::new(&study);
    let trace = analyzer.trace(&conventional.patterns.filled[0]);
    println!(
        "Figure 5 pipeline: pattern 0 -> {} toggles, STW {:.2} ns, chip SCAP {:.1} mW\n",
        trace.num_toggles(),
        trace.stw_ps() / 1000.0,
        analyzer.power_of_trace(&trace).chip_scap_vdd_mw()
    );

    // Figure 7.
    let f7 = experiments::fig7(&study, &noise_aware);
    println!("{}", experiments::render_fig7(&f7));

    // Ablations.
    let rows = ablation::staged_fill_matrix(&study);
    println!("{}", ablation::render_matrix(&rows));
    let sweep = ablation::threshold_sensitivity(&study, &conventional, &[0.25, 0.5, 1.0, 2.0, 4.0]);
    println!("threshold sensitivity (factor -> conventional patterns above):");
    for (f, above) in &sweep {
        println!("  x{f:<5} {above}");
    }
    println!("\ntotal wall time: {:.0} s", t0.elapsed().as_secs_f64());
}
