//! One-shot regeneration of the paper's full evaluation.
//!
//! ```text
//! cargo run --release -p scap-bench --bin evaluation [scale]
//! ```
//!
//! Prints every table and figure of the DAC'07 paper at the requested
//! design scale (default 0.02 ≈ 460 flops; the paper's chip is scale 1.0).
//! The output of this binary is the source of `EXPERIMENTS.md`.
//!
//! Besides the human-readable report, the run writes
//! `BENCH_evaluation.json` (override the path with `SCAP_BENCH_JSON`):
//! per-stage wall-clock in milliseconds **and the counters that advanced
//! during the stage** (CG iterations, warm-start hits, fault-sim
//! detections, patterns screened, …), the requested and *effective*
//! worker-thread counts and the design scale, so serial-vs-parallel
//! comparisons are machine-checkable and hot stages are attributable to
//! actual work rather than guessed at.
//!
//! The final stages (`cluster_profile_{1,2,4}w`) benchmark the sharded
//! serving tier: real `scap-cluster-worker` processes behind the
//! consistent-hash coordinator, answering a rotating `/v1/profile`
//! burst over eight shard keys. Their `requests_per_sec` fields are
//! what `scripts/check.sh` holds the committed scaling claims against.

use scap::{ablation, experiments, flows, CaseStudy, PatternAnalyzer};
use scap_cluster::{ClusterConfig, Coordinator, Ring, DEFAULT_REPLICAS};
use scap_serve::loadgen;
use std::time::{Duration, Instant};

/// One timed pipeline stage: wall-clock plus the counter activity it
/// caused (deltas of the process-wide `scap-obs` registry across the
/// stage; zero deltas omitted).
struct Stage {
    name: &'static str,
    ms: f64,
    metrics: Vec<(&'static str, u64)>,
    /// Fault-simulation throughput over the stage (launch/detect checks
    /// per wall-clock second), when the stage ran any.
    checks_per_sec: Option<f64>,
    /// HTTP throughput over the stage (completed requests per
    /// wall-clock second), for the cluster serving stages.
    requests_per_sec: Option<f64>,
}

/// Per-stage wall-clock + metrics collector feeding
/// `BENCH_evaluation.json`.
struct StageClock {
    stages: Vec<Stage>,
}

impl StageClock {
    fn new() -> Self {
        StageClock { stages: Vec::new() }
    }

    /// Runs `f`, recording its wall-clock and counter deltas under `name`.
    fn time<T>(&mut self, name: &'static str, f: impl FnOnce() -> T) -> T {
        let before = scap_obs::snapshot();
        let t = Instant::now();
        let out = f();
        let ms = t.elapsed().as_secs_f64() * 1e3;
        let metrics = scap_obs::snapshot().counter_deltas(&before);
        let checks_per_sec = metrics
            .iter()
            .find(|(n, _)| *n == "sim.fault_sim_checks")
            .filter(|&&(_, d)| d > 0 && ms > 0.0)
            .map(|&(_, d)| d as f64 / (ms / 1e3));
        self.stages.push(Stage {
            name,
            ms,
            metrics,
            checks_per_sec,
            requests_per_sec: None,
        });
        out
    }

    /// Stamps HTTP throughput onto the most recent stage, returning the
    /// value for the caller's own reporting.
    fn annotate_requests_per_sec(&mut self, completed: usize) -> f64 {
        let stage = self.stages.last_mut().expect("a stage was just timed");
        let rps = completed as f64 / (stage.ms / 1e3);
        stage.requests_per_sec = Some(rps);
        rps
    }

    /// Renders the collected stages as a JSON document, built with the
    /// workspace's shared writer ([`scap_obs::json`]) so escaping and
    /// non-finite-float handling (NaN/∞ → `null`) live in one place.
    ///
    /// Per-stage `"metrics"` hold the *nonzero* counter deltas; the
    /// `"totals"` object lists every registered metric with its final
    /// cumulative value (zeros included), so the full instrumentation
    /// surface — e.g. `cg.warm_hits` even on an all-cold-start run — is
    /// visible in the document.
    fn to_json(
        &self,
        scale: f64,
        threads: usize,
        effective_threads: u64,
        total_ms: f64,
        totals: &scap_obs::Snapshot,
    ) -> String {
        use scap_obs::json::{f64_token_fixed, Arr, Obj};
        let mut stages = Arr::new();
        for stage in &self.stages {
            let mut metrics = Obj::new();
            for &(metric, delta) in &stage.metrics {
                metrics.u64(metric, delta);
            }
            let mut o = Obj::new();
            o.str("name", stage.name)
                .raw("ms", &f64_token_fixed(stage.ms, 3));
            if let Some(cps) = stage.checks_per_sec {
                o.raw("fault_sim_checks_per_sec", &f64_token_fixed(cps, 1));
            }
            if let Some(rps) = stage.requests_per_sec {
                o.raw("requests_per_sec", &f64_token_fixed(rps, 2));
            }
            o.raw("metrics", &metrics.finish());
            stages.raw(&o.finish());
        }
        let mut tot = Obj::new();
        for &(n, v) in totals.counters.iter().chain(&totals.gauges) {
            tot.u64(n, v);
        }
        for &(n, v) in &totals.float_gauges {
            tot.f64(n, v);
        }
        let mut root = Obj::new();
        root.f64("scale", scale)
            .u64("threads", threads as u64)
            .u64("effective_threads", effective_threads)
            .raw("total_ms", &f64_token_fixed(total_ms, 3))
            .raw("stages", &stages.finish())
            .raw("totals", &tot.finish());
        scap_obs::json::pretty(&root.finish())
    }
}

/// Scale of the cluster serving-tier stages. Kept as the literal query
/// string so the shard keys computed here match the ones the
/// coordinator derives from the request bytes.
const CLUSTER_SCALE: &str = "0.004";
/// Distinct `(scale, seed)` shard keys rotating through the burst.
const CLUSTER_KEYS: usize = 8;
/// Per-worker response/design cache capacity: **half** the shard-key
/// count, so a lone worker cycling through all eight keys evicts every
/// entry before its next use (LRU's pathological pattern) while two or
/// four workers hold their four- or two-key shards fully resident.
const CLUSTER_CACHE_CAP: usize = 4;

/// `scap-cluster-worker` sits next to this binary when the workspace
/// was built at the same profile; `None` (stage skipped) otherwise.
fn cluster_worker_binary() -> Option<std::path::PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let bin = exe.parent()?.join("scap-cluster-worker");
    bin.is_file().then_some(bin)
}

/// Eight profile seeds splitting 8 / 4+4 / 2+2+2+2 across the 1-, 2-
/// and 4-worker fleets, so per-fleet cache residency is by
/// construction, not luck. Consistent hashing constrains the reachable
/// `(owner under a 2-slot ring, owner under a 4-slot ring)` pairs:
/// growing a ring only moves keys *to the new slots*, so a key owned by
/// slot 0 or 1 on the 4-ring has the same owner on the 2-ring. The
/// quota below is the unique per-pair count that balances both rings
/// under that constraint.
fn balanced_cluster_seeds() -> Vec<u64> {
    let scale: f64 = CLUSTER_SCALE.parse().expect("literal parses");
    let ring2 = Ring::new(2, DEFAULT_REPLICAS);
    let ring4 = Ring::new(4, DEFAULT_REPLICAS);
    // quota[o2][o4]: keys staying on slot 0/1 pin o2 == o4 (two each);
    // keys moving to slot 2/3 split evenly between the 2-ring owners.
    let mut quota = [[2, 0, 1, 1], [0, 2, 1, 1]];
    let mut seeds = Vec::with_capacity(CLUSTER_KEYS);
    for seed in 1..100_000u64 {
        let key = Ring::shard_key(scale, seed);
        let slot = &mut quota[ring2.owner(key)][ring4.owner(key)];
        if *slot > 0 {
            *slot -= 1;
            seeds.push(seed);
            if seeds.len() == CLUSTER_KEYS {
                break;
            }
        }
    }
    assert_eq!(
        seeds.len(),
        CLUSTER_KEYS,
        "ring-balanced seed quota unfilled below seed 100000"
    );
    seeds
}

/// Boots a `workers`-process fleet behind an in-process coordinator,
/// warms every shard once (untimed), then times a rotating burst over
/// the eight shard keys. Returns the burst's requests per second.
fn cluster_stage(
    clock: &mut StageClock,
    name: &'static str,
    worker_bin: &std::path::Path,
    workers: usize,
    targets: &[(String, String)],
) -> f64 {
    let worker_command = [
        worker_bin.to_str().expect("target paths are UTF-8"),
        "--workers",
        "2",
        "--queue-depth",
        "64",
        "--cache-capacity",
        &CLUSTER_CACHE_CAP.to_string(),
        "--cache-cap",
        &CLUSTER_CACHE_CAP.to_string(),
    ]
    .iter()
    .map(|s| (*s).to_owned())
    .collect();
    let coordinator = Coordinator::launch(ClusterConfig {
        addr: "127.0.0.1:0".to_owned(),
        workers,
        worker_command,
        // No hedging here: duplicated recomputes would flatter the
        // small fleets by borrowing idle neighbours' capacity.
        hedge: Duration::from_secs(600),
        ..ClusterConfig::default()
    })
    .expect("launching the cluster fleet");
    let addr = coordinator.local_addr();
    let shutdown = coordinator.shutdown_handle();
    let join = std::thread::spawn(move || coordinator.run().expect("coordinator run"));

    // Untimed warm pass: every shard key answered once, so each fleet
    // starts the timed burst with whatever residency its per-worker
    // caches can actually sustain.
    let warm = loadgen::burst_targets(addr, "POST", targets, targets.len(), 1);
    assert_eq!(warm.transport_errors, 0, "cluster warm pass lost requests");
    assert_eq!(
        warm.count(200),
        targets.len(),
        "cluster warm pass statuses: {:?}",
        warm.statuses
    );

    let per_thread = 4;
    let report = clock.time(name, || {
        loadgen::burst_targets(addr, "POST", targets, targets.len(), per_thread)
    });
    let expected = targets.len() * per_thread;
    assert_eq!(report.transport_errors, 0, "cluster burst lost requests");
    assert_eq!(
        report.count(200),
        expected,
        "cluster burst statuses: {:?}",
        report.statuses
    );
    let rps = clock.annotate_requests_per_sec(expected);

    shutdown.signal();
    join.join().expect("coordinator thread panicked");
    rps
}

/// The serving-tier benchmark: `POST /v1/profile` over eight shard
/// keys against 1-, 2- and 4-worker fleets. The machine may well have
/// a single CPU — what scales is *aggregate cache capacity*: the lone
/// worker's caps-4 caches thrash under the eight-key rotation and
/// recompute every profile, while the sharded fleets keep every key
/// resident and answer from cache at wire speed.
fn cluster_scaling(clock: &mut StageClock) {
    let Some(worker_bin) = cluster_worker_binary() else {
        println!(
            "cluster scaling skipped: scap-cluster-worker not found next to this \
             binary (build the full workspace at the same profile first)"
        );
        return;
    };
    let seeds = balanced_cluster_seeds();
    let targets: Vec<(String, String)> = seeds
        .iter()
        .map(|seed| {
            (
                "/v1/profile".to_owned(),
                format!("scale={CLUSTER_SCALE}&seed={seed}&deadline_ms=120000"),
            )
        })
        .collect();
    let mut results = Vec::new();
    for (name, workers) in [
        ("cluster_profile_1w", 1usize),
        ("cluster_profile_2w", 2),
        ("cluster_profile_4w", 4),
    ] {
        let rps = cluster_stage(clock, name, &worker_bin, workers, &targets);
        results.push((workers, rps));
    }
    println!(
        "Cluster serving tier (POST /v1/profile, {CLUSTER_KEYS} shard keys, \
         per-worker cache capacity {CLUSTER_CACHE_CAP}):"
    );
    let baseline = results[0].1;
    for &(workers, rps) in &results {
        println!(
            "  {workers} worker(s): {rps:>8.2} req/s  ({:.1}x the single-worker fleet)",
            rps / baseline
        );
    }
}

fn main() {
    let scale: f64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(0.02);
    let threads = scap_exec::Executor::new().threads();
    scap_obs::set_enabled(true);
    let mut clock = StageClock::new();
    let t0 = Instant::now();
    println!("== scap-atpg evaluation @ scale {scale}, {threads} thread(s) ==\n");
    let study = clock.time("design", || CaseStudy::new(scale));

    // Tables 1 & 2.
    let report = clock.time("table1", || experiments::table1(&study));
    println!("{}", experiments::render_table1(&report));
    println!("{}", experiments::render_table2(&report));

    // Table 3 + thresholds.
    let t3 = clock.time("table3_statistical", || experiments::table3(&study));
    println!("{}", experiments::render_table3(&study, &t3));
    let b5 = study.design.block_named("B5").expect("B5 exists");
    let thr = clock.time("scap_thresholds", || {
        experiments::scap_thresholds(&study)[b5.index()]
    });
    println!("B5 SCAP screening threshold: {thr:.2} mW\n");

    // Flows.
    println!(
        "[{}s] running conventional random-fill ATPG …",
        t0.elapsed().as_secs()
    );
    let conventional = clock.time("flow_conventional", || flows::conventional(&study));
    println!(
        "[{}s] running noise-aware staged ATPG …",
        t0.elapsed().as_secs()
    );
    let noise_aware = clock.time("flow_noise_aware", || flows::noise_aware(&study));

    // Table 4.
    let t4 = clock.time("table4_cap_scap", || {
        experiments::table4(&study, &conventional)
    });
    println!("\n{}", experiments::render_table4(&t4));

    // Figures 2 & 6 (whole-set SCAP profiles — the parallel_map hot loop).
    let f2 = clock.time("fig2_scap_profile", || {
        experiments::fig2(&study, &conventional)
    });
    let f6 = clock.time("fig6_scap_profile", || {
        experiments::fig6(&study, &noise_aware)
    });
    println!(
        "{}",
        experiments::render_scap_series("Figure 2 (conventional B5 SCAP)", &f2)
    );
    println!(
        "{}",
        experiments::render_scap_series("Figure 6 (noise-aware B5 SCAP)", &f6)
    );
    for (label, start) in &noise_aware.steps {
        println!("  {label}: starts at pattern {start}");
    }

    // Figure 3 (two dynamic IR-drop solves).
    let f3 = clock.time("fig3_irdrop", || experiments::fig3(&study, &conventional));
    println!("\n{}", experiments::render_fig3(&study, &f3));

    // Figure 4.
    println!("{}", experiments::render_fig4(&conventional, &noise_aware));

    // Figure 5 pipeline smoke: one trace through the SCAP calculator.
    let analyzer = PatternAnalyzer::new(&study);
    let trace = analyzer.trace(&conventional.patterns.filled[0]);
    println!(
        "Figure 5 pipeline: pattern 0 -> {} toggles, STW {:.2} ns, chip SCAP {:.1} mW\n",
        trace.num_toggles(),
        trace.stw_ps() / 1000.0,
        analyzer.power_of_trace(&trace).chip_scap_vdd_mw()
    );

    // Figure 7.
    let f7 = clock.time("fig7_delay_scaling", || {
        experiments::fig7(&study, &noise_aware)
    });
    println!("{}", experiments::render_fig7(&f7));

    // Noise-aware STA: nominal-vs-derated slack distribution, fault risk
    // tiers driving ATPG targeting order, and the derated
    // launch-to-capture pattern screen.
    let sta = clock.time("sta_noise_aware", || {
        scap::sta::NoiseAwareSta::worst_case(&study)
    });
    let period = study.period_ps();
    let slacks = sta.endpoint_slacks();
    println!(
        "Noise-aware STA ({} endpoints, cycle {:.0} ps):",
        slacks.len(),
        period
    );
    println!(
        "  nominal: critical path {:.0} ps, worst slack {:.0} ps",
        sta.nominal.critical_path_ps(),
        sta.nominal.worst_slack_ps().unwrap_or(0.0)
    );
    println!(
        "  derated: critical path {:.0} ps, worst slack {:.0} ps",
        sta.derated.critical_path_ps(),
        sta.derated.worst_slack_ps().unwrap_or(0.0)
    );
    // Slack histogram: ten 10 %-of-cycle bins (plus a negative bucket).
    let bin_of = |s: f64| {
        if s < 0.0 {
            0usize
        } else {
            1 + ((s / period * 10.0) as usize).min(9)
        }
    };
    let mut nominal_bins = [0usize; 11];
    let mut derated_bins = [0usize; 11];
    for &(_, nom, der) in &slacks {
        nominal_bins[bin_of(nom)] += 1;
        derated_bins[bin_of(der)] += 1;
    }
    println!("  slack histogram (% of cycle): bucket nominal derated");
    for (i, (n_count, d_count)) in nominal_bins.iter().zip(&derated_bins).enumerate() {
        let label = if i == 0 {
            "  <0".to_owned()
        } else {
            format!("{:>2}0%", i - 1)
        };
        println!("    {label:>6} {n_count:>7} {d_count:>7}");
    }
    let mut worst = slacks.clone();
    worst.sort_by(|a, b| {
        a.2.total_cmp(&b.2)
            .then_with(|| a.0.index().cmp(&b.0.index()))
    });
    for &(flop, nom, der) in worst.iter().take(5) {
        println!(
            "    endpoint {:<12} nominal {:>8.0} ps  derated {:>8.0} ps",
            study.design.netlist.flop(flop).name,
            nom,
            der
        );
    }
    let full_faults = scap::sim::FaultList::full(&study.design.netlist);
    let tier_hist = sta.tier_histogram(&study.design.netlist, &full_faults);
    let tier_parts: Vec<String> = tier_hist
        .iter()
        .map(|(t, c)| format!("{} {}", t.label(), c))
        .collect();
    println!("  fault risk tiers: {}", tier_parts.join(" | "));
    let prioritized = clock.time("atpg_risk_prioritized", || {
        use scap::dft::FillPolicy;
        use scap::tgen::FaultStatus;
        let n = &study.design.netlist;
        let order = sta.fault_priority_order(n, &full_faults);
        let config = flows::flow_atpg_config(FillPolicy::Zero);
        scap::tgen::Generator::new(n, study.clka(), config).run_with_status_in_order(
            &full_faults,
            vec![FaultStatus::Undetected; full_faults.faults().len()],
            &order,
        )
    });
    println!(
        "  risk-prioritized ATPG: {} patterns, {:.2} % fault coverage",
        prioritized.patterns.len(),
        prioritized.fault_coverage() * 100.0
    );
    let screen = clock.time("timing_screen_derated", || {
        scap::sta::TimingScreen::run(&study, &noise_aware.patterns, 40.0)
    });
    println!(
        "  derated timing screen (k x40): {}/{} patterns exceed the {:.0} ps budget\n",
        screen.invalidated_count(),
        noise_aware.patterns.len(),
        screen.budget_ps
    );

    // Ablations.
    let rows = clock.time("ablation_fill_matrix", || {
        ablation::staged_fill_matrix(&study)
    });
    println!("{}", ablation::render_matrix(&rows));
    let sweep = clock.time("ablation_threshold_sweep", || {
        ablation::threshold_sensitivity(&study, &conventional, &[0.25, 0.5, 1.0, 2.0, 4.0])
    });
    println!("threshold sensitivity (factor -> conventional patterns above):");
    for (f, above) in &sweep {
        println!("  x{f:<5} {above}");
    }

    // Engine comparison: the hybrid (PODEM + SAT-on-abort) engine must
    // leave no fault Aborted-and-unproven — every PODEM abort either
    // gets a SAT-found test or an UNSAT untestability proof — and its
    // test coverage may only improve on PODEM's (reclassifying proven
    // redundancies shrinks the denominator).
    println!(
        "\n[{}s] running PODEM-vs-hybrid engine comparison …",
        t0.elapsed().as_secs()
    );
    let before_sat = scap_obs::snapshot();
    let (podem_run, hybrid_run) = clock.time("engine_comparison", || {
        use scap::dft::FillPolicy;
        use scap::sim::FaultList;
        use scap::tgen::EngineKind;
        let n = &study.design.netlist;
        let clka = study.clka();
        let faults = FaultList::full(n);
        let run = |engine| {
            // A deep conflict budget: at evaluation scale every abort
            // must end in a definite verdict, not an Unknown timeout.
            let config = scap::tgen::AtpgConfig {
                sat_conflict_limit: 2_000_000,
                ..flows::flow_atpg_config_with_engine(FillPolicy::Random, engine)
            };
            scap::tgen::Generator::new(n, clka, config).run(&faults)
        };
        (run(EngineKind::Podem), run(EngineKind::Hybrid))
    });
    let sat_delta = |name| {
        scap_obs::snapshot()
            .counter(name)
            .unwrap_or(0)
            .saturating_sub(before_sat.counter(name).unwrap_or(0))
    };
    println!("Engine comparison (full fault list, random fill):");
    println!("  engine   patterns   test cov   aborted   untestable");
    for (label, run) in [("podem", &podem_run), ("hybrid", &hybrid_run)] {
        println!(
            "  {label:<8} {:>8}   {:>7.2}%   {:>7}   {:>10}",
            run.patterns.len(),
            run.test_coverage() * 100.0,
            run.num_aborted(),
            run.num_untestable(),
        );
    }
    println!(
        "  hybrid verdicts for PODEM aborts: {} proven untestable, {} SAT-rescued tests, {} unresolved",
        sat_delta("atpg.reclassified_untestable"),
        sat_delta("atpg.sat_rescued_tests"),
        hybrid_run.num_aborted(),
    );
    println!(
        "  solver: {} solves, {} conflicts, {} propagations",
        sat_delta("sat.solves"),
        sat_delta("sat.conflicts"),
        sat_delta("sat.propagations"),
    );

    // Cluster serving tier: aggregate warm-cache capacity scaling.
    println!(
        "\n[{}s] running cluster serving-tier scaling …",
        t0.elapsed().as_secs()
    );
    cluster_scaling(&mut clock);

    let total_ms = t0.elapsed().as_secs_f64() * 1e3;
    println!("\ntotal wall time: {:.0} s", total_ms / 1e3);
    let final_snapshot = scap_obs::snapshot();
    // The high-water mark the executor actually reached — distinct from
    // the requested width when every map had fewer items than workers.
    let effective_threads = final_snapshot.gauge("exec.effective_threads").unwrap_or(0);
    println!("{}", scap_obs::render(&final_snapshot));
    let json = clock.to_json(scale, threads, effective_threads, total_ms, &final_snapshot);
    let path = std::env::var("SCAP_BENCH_JSON").unwrap_or_else(|_| "BENCH_evaluation.json".into());
    match std::fs::write(&path, &json) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => eprintln!("warning: cannot write {path}: {e}"),
    }
}
