//! Figure 2: per-pattern SCAP of the conventional random-fill set in the
//! hot block B5 — printed once, then benches per-pattern SCAP measurement.

use criterion::{criterion_group, criterion_main, Criterion};
use scap::experiments;
use scap::PatternAnalyzer;

fn bench(c: &mut Criterion) {
    let study = scap_bench::study();
    let conv = scap_bench::conventional();
    let f2 = experiments::fig2(study, conv);
    println!(
        "\n{}",
        experiments::render_scap_series("Figure 2 (conventional B5 SCAP)", &f2)
    );
    println!("paper: 2253 of 5846 random-fill patterns (39 %) above the 204 mW threshold");
    let analyzer = PatternAnalyzer::new(study);
    let pattern = conv.patterns.filled[0].clone();
    let mut g = c.benchmark_group("fig2");
    g.sample_size(20);
    g.bench_function("scap_of_one_pattern", |b| {
        b.iter(|| analyzer.power(&pattern))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
