//! Table 3: statistical IR-drop per block, full- vs half-cycle window —
//! printed once, then benches the vector-less grid solve.

use criterion::{criterion_group, criterion_main, Criterion};
use scap::experiments;
use scap::power::StatisticalAnalysis;

fn bench(c: &mut Criterion) {
    let study = scap_bench::study();
    let t3 = experiments::table3(study);
    println!("\n{}", experiments::render_table3(study, &t3));
    println!("paper shape: Case2 power = 2x Case1 per block; B5 dominates power and drop");
    let stat = StatisticalAnalysis::new(&study.design.netlist, &study.design.floorplan, study.grid);
    let mut g = c.benchmark_group("table3");
    g.sample_size(20);
    g.bench_function("statistical_analysis_half_cycle", |b| {
        b.iter(|| stat.run(&study.annotation, 0.30, study.period_ps() / 2.0))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
