//! Figure 6: per-pattern SCAP of the noise-aware set in B5 — printed
//! once, then benches a staged generation step.

use criterion::{criterion_group, criterion_main, Criterion};
use scap::dft::FillPolicy;
use scap::experiments;
use scap::sim::FaultList;
use scap::tgen::{AtpgConfig, Generator};

fn bench(c: &mut Criterion) {
    let study = scap_bench::study();
    let na = scap_bench::noise_aware();
    let f6 = experiments::fig6(study, na);
    println!(
        "\n{}",
        experiments::render_scap_series("Figure 6 (noise-aware B5 SCAP)", &f6)
    );
    for (label, start) in &na.steps {
        println!("  {label}: starts at pattern {start}");
    }
    println!("paper: flat-low prefix, late B5 spike, 57 of 6490 (0.9 %) above threshold");
    // Kernel: one per-block ATPG step (B6 alone) under fill-0.
    let n = &study.design.netlist;
    let b6 = study.design.block_named("B6").expect("B6 exists");
    let faults = FaultList::for_blocks(n, &[b6]);
    let config = AtpgConfig {
        fill: FillPolicy::Zero,
        max_patterns: 16,
        ..AtpgConfig::default()
    };
    let generator = Generator::new(n, study.clka(), config);
    let mut g = c.benchmark_group("fig6");
    g.sample_size(10);
    g.bench_function("staged_atpg_step_b6_16_patterns", |b| {
        b.iter(|| generator.run(&faults))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
