//! Ablations beyond the paper: staging x fill matrix and SCAP-threshold
//! sensitivity (the trade-off §2.2 discusses).

use criterion::{criterion_group, criterion_main, Criterion};
use scap::ablation;

fn bench(c: &mut Criterion) {
    let study = scap_bench::study();
    let rows = ablation::staged_fill_matrix(study);
    println!("\n{}", ablation::render_matrix(&rows));
    let conv = scap_bench::conventional();
    let sweep = ablation::threshold_sensitivity(study, conv, &[0.25, 0.5, 1.0, 2.0, 4.0]);
    println!("threshold sensitivity (factor -> conventional patterns above):");
    for (f, above) in &sweep {
        println!("  x{f:<5} {above}");
    }
    let mut g = c.benchmark_group("ablations");
    g.sample_size(10);
    g.bench_function("threshold_sweep", |b| {
        b.iter(|| ablation::threshold_sensitivity(study, conv, &[0.5, 1.0, 2.0]))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
