//! Table 4: CAP vs SCAP power and IR-drop for one pattern — printed once,
//! then benches the dynamic IR-drop solve.

use criterion::{criterion_group, criterion_main, Criterion};
use scap::experiments;
use scap::power::DynamicAnalysis;
use scap::PatternAnalyzer;

fn bench(c: &mut Criterion) {
    let study = scap_bench::study();
    let conv = scap_bench::conventional();
    let t4 = experiments::table4(study, conv);
    println!("\n{}", experiments::render_table4(&t4));
    println!("paper: SCAP roughly 2x CAP on both power and worst drop (STW 8.34 ns of 20 ns)");
    let analyzer = PatternAnalyzer::new(study);
    let trace = analyzer.trace(&conv.patterns.filled[t4.pattern_index]);
    let dynir = DynamicAnalysis::new(&study.design.netlist, &study.design.floorplan, study.grid);
    let mut g = c.benchmark_group("table4");
    g.sample_size(20);
    g.bench_function("dynamic_irdrop_solve", |b| {
        b.iter(|| dynir.analyze(&study.annotation, &trace))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
