//! Micro-benchmarks of the core computational kernels.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};
use scap::dft::{FillPolicy, PatternBatch, TestPattern};
use scap::sim::{BatchSim, FaultList, TransitionFaultSim};
use scap::tgen::{Podem, PodemOutcome};

fn bench(c: &mut Criterion) {
    let study = scap_bench::study();
    let n = &study.design.netlist;
    let clka = study.clka();
    let mut rng = rand::rngs::StdRng::seed_from_u64(1);

    let mut g = c.benchmark_group("kernels");
    g.sample_size(10);
    let batch_sim = BatchSim::new(n);
    let loads: Vec<u64> = (0..n.num_flops()).map(|_| rng.gen()).collect();
    let pis: Vec<u64> = (0..n.primary_inputs().len()).map(|_| rng.gen()).collect();
    g.bench_function("batch_sim_64_patterns", |b| {
        b.iter(|| batch_sim.eval(&loads, &pis))
    });

    let faults = FaultList::full(n);
    let fsim = TransitionFaultSim::new(n, clka);
    let mut filled = Vec::new();
    for _ in 0..64 {
        let p = TestPattern::unspecified(n);
        filled.push(p.fill(n, FillPolicy::Random, &mut rng));
    }
    let batch = PatternBatch::pack(&filled);
    let subset: Vec<_> = faults.faults().iter().copied().take(512).collect();
    g.bench_function("fault_sim_512_faults_x64_patterns", |b| {
        b.iter(|| fsim.detect_batch(&batch.load_words, &batch.pi_words, !0, &subset))
    });

    let podem = Podem::new(n, clka, 100);
    g.bench_function("podem_100_faults", |b| {
        b.iter(|| {
            let mut found = 0;
            for &f in faults.faults().iter().take(100) {
                let mut p = TestPattern::unspecified(n);
                if podem.generate(f, &mut p) == PodemOutcome::Test {
                    found += 1;
                }
            }
            found
        })
    });

    let grid = scap::power::PowerGrid::new(study.design.floorplan.die, study.grid);
    let currents: Vec<f64> = (0..grid.num_nodes())
        .map(|_| rng.gen::<f64>() * 1e-4)
        .collect();
    g.bench_function("grid_cg_solve_576_nodes", |b| {
        b.iter(|| grid.solve(&currents))
    });

    // Solver-reuse variants of the same solve: hoisted scratch
    // allocations (cold start, bit-identical) and warm start from the
    // previous solution (same tolerance, fewer iterations).
    let mut solver = grid.solver();
    g.bench_function("grid_cg_solve_reused_scratch", |b| {
        b.iter(|| solver.solve(&currents))
    });
    let mut warm = grid.solver();
    g.bench_function("grid_cg_solve_warm_start", |b| {
        b.iter(|| warm.solve_warm(&currents))
    });

    // Per-pattern dynamic IR-drop: one-shot (grid system assembled per
    // pattern) vs the profile path (assembled once + session reuse).
    use scap::PatternAnalyzer;
    let analyzer = PatternAnalyzer::new(study);
    let pats = filled[..8].to_vec();
    g.bench_function("irdrop_8_patterns_one_shot", |b| {
        b.iter(|| {
            for p in &pats {
                criterion::black_box(analyzer.ir_drop(p));
            }
        })
    });
    g.bench_function("irdrop_8_patterns_profile", |b| {
        b.iter(|| analyzer.ir_drop_profile(&pats).len())
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
