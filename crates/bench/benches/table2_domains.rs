//! Table 2: clock-domain analysis — printed once, then benches the
//! per-domain breakdown.

use criterion::{criterion_group, criterion_main, Criterion};
use scap::experiments;
use scap::netlist::ClockId;

fn bench(c: &mut Criterion) {
    let study = scap_bench::study();
    let report = experiments::table1(study);
    println!("\n{}", experiments::render_table2(&report));
    println!("paper: clka dominant (~18K flops, covers B1-B6); clkb-clkf block-local");
    let n = &study.design.netlist;
    let mut g = c.benchmark_group("table2");
    g.sample_size(20);
    g.bench_function("count_domain_flops", |b| {
        b.iter(|| {
            (0..n.clocks().len())
                .map(|i| n.flops_in_clock(ClockId::new(i as u32)).count())
                .sum::<usize>()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
