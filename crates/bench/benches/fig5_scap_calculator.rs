//! Figure 5: the SCAP calculator flow. The paper's figure is an
//! architecture diagram (VCS + PLI + SPEF capacitances); here the
//! equivalent pipeline is the event-driven trace feeding the calculator.
//! Prints the flow once, then benches the calculator kernel.

use criterion::{criterion_group, criterion_main, Criterion};
use scap::power::ScapCalculator;
use scap::PatternAnalyzer;

fn bench(c: &mut Criterion) {
    let study = scap_bench::study();
    let conv = scap_bench::conventional();
    println!("\nFigure 5 pipeline: netlist + placement -> DelayAnnotation (C_i per net)");
    println!("  -> EventSim toggle trace (the VCD-less PLI)  -> ScapCalculator per-pattern power");
    let analyzer = PatternAnalyzer::new(study);
    let trace = analyzer.trace(&conv.patterns.filled[0]);
    println!(
        "  example: {} toggles, STW {:.2} ns",
        trace.num_toggles(),
        trace.stw_ps() / 1000.0
    );
    let calc = ScapCalculator::new(&study.design.netlist, &study.annotation, study.period_ps());
    let mut g = c.benchmark_group("fig5");
    g.sample_size(20);
    g.bench_function("scap_calculator_measure", |b| {
        b.iter(|| calc.measure(&trace))
    });
    g.bench_function("event_sim_trace", |b| {
        b.iter(|| analyzer.trace(&conv.patterns.filled[0]))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
