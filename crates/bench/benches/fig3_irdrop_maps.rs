//! Figure 3: dynamic IR-drop maps of a hot pattern (P1) and a
//! near-threshold pattern (P2) — printed once, then benches map solving.

use criterion::{criterion_group, criterion_main, Criterion};
use scap::experiments;
use scap::PatternAnalyzer;

fn bench(c: &mut Criterion) {
    let study = scap_bench::study();
    let conv = scap_bench::conventional();
    let f3 = experiments::fig3(study, conv);
    println!("\n{}", experiments::render_fig3(study, &f3));
    println!("paper: P1 worst 0.28 V vs P2 worst 0.19 V on the 1.8 V VDD net");
    let analyzer = PatternAnalyzer::new(study);
    let p1 = conv.patterns.filled[f3.p1_index].clone();
    let mut g = c.benchmark_group("fig3");
    g.sample_size(20);
    g.bench_function("pattern_irdrop_map", |b| b.iter(|| analyzer.ir_drop(&p1)));
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
