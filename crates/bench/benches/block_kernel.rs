//! Scalar vs. word-packed (PPSFP) fault propagation on a fixed random
//! netlist.
//!
//! Grades the same 512 faults × 64 patterns two ways: pattern-at-a-time
//! through the single-lane fast path (the PR 5 scalar shape) and as one
//! 64-lane block through `detect_block`. The ratio between the two is
//! the bit-parallel win; a regression in the packed evaluators shows up
//! here without running the full evaluation. The netlist is seeded, so
//! numbers are comparable across runs and machines.

use criterion::{criterion_group, criterion_main, Criterion};
use rand::{Rng, SeedableRng};
use scap::netlist::{CellKind, ClockEdge, NetId, Netlist, NetlistBuilder};
use scap::sim::{FaultList, PropagationScratch, TransitionFaultSim};

/// A seeded random netlist: mixing gates, inverter/buffer chains, a scan
/// flop rim — the same shape the kernel-equivalence proptests drive,
/// scaled up to make propagation dominate.
fn fixed_random_netlist() -> Netlist {
    let mut rng = rand::rngs::StdRng::seed_from_u64(0xb10c);
    let n_ff = 96;
    let n_gates = 1200;
    let mut b = NetlistBuilder::new("block-bench");
    let blk = b.add_block("B1");
    let clk = b.add_clock_domain("clka", 100e6);
    let mut pool: Vec<NetId> = (0..8)
        .map(|i| b.add_primary_input(format!("pi{i}")))
        .collect();
    let qs: Vec<NetId> = (0..n_ff).map(|i| b.add_net(format!("q{i}"))).collect();
    pool.extend(qs.iter().copied());
    let kinds = [
        CellKind::Nand2,
        CellKind::Nor2,
        CellKind::Xor2,
        CellKind::And2,
        CellKind::Or2,
        CellKind::Mux2,
        CellKind::Aoi22,
        CellKind::Buf,
        CellKind::Inv,
    ];
    let mut outs = Vec::new();
    for i in 0..n_gates {
        let kind = kinds[rng.gen_range(0..kinds.len())];
        let y = b.add_net(format!("w{i}"));
        // Bias inputs toward recent nets for deep, narrow cones.
        let mut ins = Vec::with_capacity(kind.num_inputs());
        for _ in 0..kind.num_inputs() {
            let lo = pool.len().saturating_sub(64);
            ins.push(pool[rng.gen_range(lo..pool.len())]);
        }
        b.add_gate(kind, &ins, y, blk).unwrap();
        pool.push(y);
        outs.push(y);
    }
    for (i, &q) in qs.iter().enumerate() {
        let d = outs[rng.gen_range(0..outs.len())];
        b.add_flop(format!("ff{i}"), d, q, clk, ClockEdge::Rising, blk)
            .unwrap();
    }
    b.finish().unwrap()
}

fn bench(c: &mut Criterion) {
    let n = fixed_random_netlist();
    let clka = scap::netlist::ClockId::new(0);
    let fsim = TransitionFaultSim::new(&n, clka);
    let faults = FaultList::full(&n);
    let subset: Vec<_> = faults.faults().iter().copied().take(512).collect();
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let loads: Vec<u64> = (0..n.num_flops()).map(|_| rng.gen()).collect();
    let pis: Vec<u64> = (0..n.primary_inputs().len()).map(|_| rng.gen()).collect();
    let mut scratch = PropagationScratch::new(n.num_nets());

    let mut g = c.benchmark_group("block_kernel");
    g.sample_size(10);
    g.bench_function("scalar_512_faults_x64_patterns", |b| {
        b.iter(|| {
            let mut detections = 0u64;
            for p in 0..64 {
                let l: Vec<u64> = loads.iter().map(|&w| w >> p & 1).collect();
                let pv: Vec<u64> = pis.iter().map(|&w| w >> p & 1).collect();
                let s = fsim.detect_batch_with_scratch(&l, &pv, 1, &subset, &mut scratch);
                detections += s.detect_mask.iter().filter(|&&m| m != 0).count() as u64;
            }
            detections
        })
    });
    g.bench_function("block_512_faults_x64_patterns", |b| {
        b.iter(|| {
            let s = fsim.detect_batch_with_scratch(&loads, &pis, !0, &subset, &mut scratch);
            s.detect_mask
                .iter()
                .map(|m| m.count_ones() as u64)
                .sum::<u64>()
        })
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
