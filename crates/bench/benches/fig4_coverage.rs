//! Figure 4: coverage curves of the conventional vs noise-aware flows —
//! printed once, then benches pattern grading (fault simulation).

use criterion::{criterion_group, criterion_main, Criterion};
use scap::{experiments, grade_patterns};

fn bench(c: &mut Criterion) {
    let study = scap_bench::study();
    let conv = scap_bench::conventional();
    let na = scap_bench::noise_aware();
    println!("\n{}", experiments::render_fig4(conv, na));
    println!("paper: same final coverage, +644 patterns (~11 %) for the new procedure");
    let n = &study.design.netlist;
    let mut g = c.benchmark_group("fig4");
    g.sample_size(10);
    g.bench_function("grade_pattern_set", |b| {
        b.iter(|| grade_patterns(n, study.clka(), &conv.faults, &conv.patterns))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
