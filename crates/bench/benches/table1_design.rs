//! Table 1: design characteristics — printed once, then benches SOC
//! generation + reporting.

use criterion::{criterion_group, criterion_main, Criterion};
use scap::experiments;
use scap::soc::{DesignReport, SocConfig, SocDesign};

fn bench(c: &mut Criterion) {
    let study = scap_bench::study();
    let report = experiments::table1(study);
    println!("\n{}", experiments::render_table1(&report));
    println!(
        "paper: 6 domains, 16 chains, 22973 flops, 22 neg-edge, 461449 faults (scale {})",
        scap_bench::bench_scale()
    );
    let mut g = c.benchmark_group("table1");
    g.sample_size(10);
    g.bench_function("generate_soc", |b| {
        b.iter(|| SocDesign::generate(&SocConfig::turbo_eagle(0.004)))
    });
    g.bench_function("design_report", |b| {
        b.iter(|| DesignReport::build(&study.design))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
