//! Figure 7: endpoint delays with and without IR-drop-scaled cell delays
//! — printed once, then benches the scaled re-simulation.

use criterion::{criterion_group, criterion_main, Criterion};
use scap::experiments;
use scap::PatternAnalyzer;

fn bench(c: &mut Criterion) {
    let study = scap_bench::study();
    let na = scap_bench::noise_aware();
    let f7 = experiments::fig7(study, na);
    println!("\n{}", experiments::render_fig7(&f7));
    println!("paper: Region 1 endpoints slow by up to 30 %; Region 2 endpoints appear faster");
    let analyzer = PatternAnalyzer::new(study);
    let pattern = na.patterns.filled[f7.pattern_index].clone();
    let mut g = c.benchmark_group("fig7");
    g.sample_size(20);
    g.bench_function("scaled_endpoint_resimulation", |b| {
        b.iter(|| analyzer.endpoint_delays_scaled(&pattern))
    });
    g.finish();
}

criterion_group!(benches, bench);
criterion_main!(benches);
