//! Differential properties between the PODEM and SAT ATPG engines.
//!
//! Both engines answer the same two-frame launch-off-capture question —
//! "is there a scan load that launches a transition at the fault site
//! and captures its effect?" — over the same netlist semantics, so their
//! verdicts must agree wherever both are definite:
//!
//! * PODEM `Test` ⇒ the CNF is satisfiable (SAT also finds a test),
//! * SAT `Untestable` (an UNSAT proof) ⇒ PODEM never returns `Test`,
//! * the hybrid generator's pattern stream is bit-identical regardless
//!   of the drop-simulation thread count.

use proptest::prelude::*;
use scap_dft::TestPattern;
use scap_netlist::{CellKind, ClockEdge, ClockId, NetId, Netlist, NetlistBuilder};
use scap_sim::{FaultList, LaunchMode};
use scap_tgen::{AtpgConfig, EngineKind, Generator, Podem, PodemOutcome, SatAtpg, SatOutcome};

const CLK: ClockId = ClockId::new(0);

/// Strategy: a random acyclic netlist mixing chains, dead cones and
/// reconvergent gates — the same shape the sim-kernel equivalence tests
/// use, so both engines face redundancy and unobservability.
fn arb_netlist(max_gates: usize) -> impl Strategy<Value = Netlist> {
    (2usize..6, 5usize..max_gates.max(6), any::<u64>())
        .prop_map(|(n_ff, n_gates, seed)| random_netlist(n_ff, n_gates, seed))
}

fn random_netlist(n_ff: usize, n_gates: usize, seed: u64) -> Netlist {
    {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = NetlistBuilder::new("cross");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 100e6);
        let mut pool = vec![b.add_primary_input("pi0"), b.add_primary_input("pi1")];
        let qs: Vec<NetId> = (0..n_ff).map(|i| b.add_net(format!("q{i}"))).collect();
        pool.extend(qs.iter().copied());
        let kinds = [
            CellKind::Nand2,
            CellKind::Nor2,
            CellKind::Xor2,
            CellKind::And2,
            CellKind::Or2,
            CellKind::Buf,
            CellKind::Inv,
        ];
        let mut outs = Vec::new();
        for i in 0..n_gates {
            let kind = kinds[rng.gen_range(0..kinds.len())];
            let y = b.add_net(format!("w{i}"));
            let a = pool[rng.gen_range(0..pool.len())];
            if matches!(kind, CellKind::Buf | CellKind::Inv) {
                b.add_gate(kind, &[a], y, blk).unwrap();
            } else {
                let c = pool[rng.gen_range(0..pool.len())];
                b.add_gate(kind, &[a, c], y, blk).unwrap();
            }
            pool.push(y);
            outs.push(y);
        }
        for (i, &q) in qs.iter().enumerate() {
            let d = outs[rng.gen_range(0..outs.len())];
            b.add_flop(format!("ff{i}"), d, q, clk, ClockEdge::Rising, blk)
                .unwrap();
        }
        b.finish().unwrap()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Wherever PODEM finds a test the CNF must be satisfiable, and
    /// wherever SAT proves the fault untestable PODEM must never have
    /// found a test. A generous backtrack/conflict budget keeps both
    /// engines definite on these tiny cones, so the implications bind on
    /// nearly every fault.
    #[test]
    fn podem_and_sat_verdicts_agree(n in arb_netlist(20)) {
        let podem = Podem::with_mode(&n, CLK, LaunchMode::Capture, 10_000);
        let sat = SatAtpg::new(&n, CLK, LaunchMode::Capture, 1_000_000);
        for &fault in FaultList::full(&n).faults() {
            let mut pp = TestPattern::unspecified(&n);
            let p = podem.generate(fault, &mut pp);
            let mut sp = TestPattern::unspecified(&n);
            let s = sat.generate(fault, &mut sp);
            if p == PodemOutcome::Test {
                prop_assert_eq!(
                    s, SatOutcome::Test,
                    "PODEM detected {:?} but SAT disagreed", fault
                );
            }
            if s == SatOutcome::Untestable {
                prop_assert_ne!(
                    p, PodemOutcome::Test,
                    "SAT proved {:?} untestable but PODEM found a test", fault
                );
            }
            if p == PodemOutcome::Untestable {
                prop_assert_eq!(
                    s, SatOutcome::Untestable,
                    "PODEM exhausted the space of {:?} but the CNF is SAT", fault
                );
            }
        }
    }

    /// A SAT-produced test pattern must actually be a test: handing its
    /// care bits to PODEM as pre-set constraints still yields `Test`
    /// (the witness is consistent with PODEM's own semantics).
    #[test]
    fn sat_witness_is_a_podem_consistent_test(n in arb_netlist(20)) {
        let podem = Podem::with_mode(&n, CLK, LaunchMode::Capture, 10_000);
        let sat = SatAtpg::new(&n, CLK, LaunchMode::Capture, 1_000_000);
        for &fault in FaultList::full(&n).faults() {
            let mut sp = TestPattern::unspecified(&n);
            if sat.generate(fault, &mut sp) != SatOutcome::Test {
                continue;
            }
            let mut check = sp.clone();
            prop_assert_eq!(
                podem.generate(fault, &mut check),
                PodemOutcome::Test,
                "SAT witness for {:?} rejected by PODEM", fault
            );
        }
    }
}

/// The hybrid engine's pattern stream is bit-identical across
/// drop-simulation thread counts: SAT rescues happen in the serial
/// targeting loop, and the PPSFP drop kernel is sharded
/// deterministically.
#[test]
fn hybrid_stream_is_thread_count_invariant() {
    for seed in 0..6u64 {
        let n = random_netlist(4, 16, 0x5EED ^ seed.wrapping_mul(0x9E37_79B9));
        let faults = FaultList::full(&n);
        let config = AtpgConfig {
            engine: EngineKind::Hybrid,
            // Tight budget so some primary targets abort and take the
            // SAT path — the stream must stay deterministic through it.
            backtrack_limit: 2,
            ..AtpgConfig::default()
        };
        let run_with = |threads: usize| {
            scap_exec::set_default_threads(threads);
            Generator::new(&n, CLK, config).run(&faults)
        };
        let one = run_with(1);
        let three = run_with(3);
        scap_exec::set_default_threads(1);
        assert_eq!(
            one.patterns.source, three.patterns.source,
            "hybrid source patterns diverged across thread counts"
        );
        assert_eq!(
            one.patterns.filled, three.patterns.filled,
            "hybrid filled patterns diverged across thread counts"
        );
        assert_eq!(one.status, three.status, "fault statuses diverged");
    }
}
