//! The two-time-frame PODEM engine.
//!
//! Decision variables are the scan-load bits (pseudo-primary inputs) and
//! the held primary inputs. After every decision the engine updates both
//! frames three-valued — frame 1 plain, frame 2 as a good/faulty plane
//! pair with the fault site stuck at its pre-transition value — and
//! derives the next objective:
//!
//! 1. launch: frame-1 site value = initial value,
//! 2. excitation: frame-2 good site value = final value,
//! 3. propagation: drive a D-frontier gate's side inputs non-controlling
//!    until the good/faulty difference reaches an observed capture flop.
//!
//! The planes live in a [`PodemScratch`] and are maintained
//! *incrementally*: each decision changes one input bit (a backtrack, a
//! handful), so instead of three full levelized passes the engine diffs
//! the inputs against the cached planes and event-propagates only the
//! affected fanout through a [`LevelQueue`]. The faulty plane is never
//! simulated whole-netlist at all: outside the fault site's output cone
//! it is identical to the good plane by construction, so it is kept as a
//! cone overlay and rebuilt in one O(cone) topological sweep per
//! decision.

use scap_dft::TestPattern;
use scap_netlist::{CellKind, ClockId, Logic, NetId, NetSource, Netlist};
use scap_sim::{loc, FaultSite, LaunchMode, LevelQueue, LogicSim, SimTable, TransitionFault};

/// Outcome of one PODEM run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PodemOutcome {
    /// A test was found; the pattern has been extended in place.
    Test,
    /// No test exists (search space exhausted without hitting the
    /// backtrack limit). Under a constrained (secondary) run this only
    /// means "untestable given the existing assignments".
    Untestable,
    /// The backtrack limit was hit first.
    Aborted,
}

/// Which time frame an objective lives in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Frame {
    One,
    Two,
}

/// A decision variable: a scan-load bit or a primary input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Var {
    Load(u32),
    Pi(u32),
}

/// Where a flop's frame-2 (launch) state comes from, precomputed per
/// launch mode so the incremental resync never re-derives chain order.
///
/// Shared with the SAT engine (`sat_engine`), whose CNF encoding must
/// alias frame-2 flop variables to exactly the same sources the PODEM
/// planes read — the two engines agree on two-frame semantics by
/// construction, not by parallel reimplementation.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum State2Src {
    /// Launch-off-capture, active domain: captures frame 1's D value.
    FromD(NetId),
    /// Holds its own scan-load value (inactive domain / unstitched).
    Hold,
    /// Launch-off-shift: takes the upstream scan cell's load.
    LoadOf(u32),
    /// Launch-off-shift chain head: the constant scan-in (0).
    ScanIn,
}

/// Observation points of one clock domain: the D nets of its capture
/// flops.
pub(crate) fn observation_points(netlist: &Netlist, active_clock: ClockId) -> Vec<NetId> {
    netlist
        .flops()
        .iter()
        .filter(|f| f.clock == active_clock)
        .map(|f| f.d)
        .collect()
}

/// Per-net "can structurally reach an observation point" mask (backward
/// reachability over gate inputs). Faults whose effect net falls outside
/// the mask are untestable without any search.
pub(crate) fn observable_mask(netlist: &Netlist, observed: &[NetId]) -> Vec<bool> {
    let mut observable = vec![false; netlist.num_nets()];
    for n in observed {
        observable[n.index()] = true;
    }
    let mut work: Vec<u32> = observed.iter().map(|n| n.raw()).collect();
    while let Some(ni) = work.pop() {
        if let Some(NetSource::Gate(g)) = netlist.net(NetId::new(ni)).source {
            for &inp in &netlist.gate(g).inputs {
                if !observable[inp.index()] {
                    observable[inp.index()] = true;
                    work.push(inp.raw());
                }
            }
        }
    }
    observable
}

/// The upstream scan cell feeding each flop at the launch shift (`None`
/// at chain heads / unstitched flops), for launch-off-shift.
pub(crate) fn scan_upstream(netlist: &Netlist) -> Vec<Option<u32>> {
    let mut by_chain: std::collections::HashMap<u16, Vec<(u32, u32)>> =
        std::collections::HashMap::new();
    for (i, f) in netlist.flops().iter().enumerate() {
        if let Some(role) = f.scan {
            by_chain
                .entry(role.chain)
                .or_default()
                .push((role.position, i as u32));
        }
    }
    let mut upstream = vec![None; netlist.num_flops()];
    for chain in by_chain.values_mut() {
        chain.sort_unstable();
        for w in chain.windows(2) {
            upstream[w[1].1 as usize] = Some(w[0].1);
        }
    }
    upstream
}

/// Frame-2 state source per flop for one launch mode (see
/// [`State2Src`]).
pub(crate) fn state2_sources(
    netlist: &Netlist,
    active_clock: ClockId,
    mode: LaunchMode,
    upstream: &[Option<u32>],
) -> Vec<State2Src> {
    netlist
        .flops()
        .iter()
        .enumerate()
        .map(|(i, f)| match mode {
            LaunchMode::Capture => {
                if f.clock == active_clock {
                    State2Src::FromD(f.d)
                } else {
                    State2Src::Hold
                }
            }
            LaunchMode::Shift => {
                if f.scan.is_some() {
                    match upstream[i] {
                        Some(up) => State2Src::LoadOf(up),
                        None => State2Src::ScanIn,
                    }
                } else {
                    State2Src::Hold
                }
            }
        })
        .collect()
}

/// Reusable simulation state for [`Podem::generate_with_scratch`].
///
/// Holds the three value planes, the event queue and the fault-cone
/// bookkeeping. A scratch is lazily (re)bound to an engine on first use;
/// binding is keyed on the netlist identity plus clock domain and launch
/// mode, so one scratch must not be shared between two *different live*
/// netlists that happen to alias in memory. Reusing one scratch across
/// all faults of a run amortises the full-netlist evaluations down to
/// one per engine rebind.
#[derive(Debug, Default)]
pub struct PodemScratch {
    /// Frame-1 net values for the currently synced pattern.
    frame1: Vec<Logic>,
    /// Frame-2 good-machine net values.
    good2: Vec<Logic>,
    /// Frame-2 faulty-machine values, valid only on cone-stamped nets;
    /// everywhere else the faulty machine equals `good2`.
    faulty2: Vec<Logic>,
    queue: LevelQueue,
    /// Cone membership stamps (valid where == `cone_epoch`).
    cone_net: Vec<u32>,
    cone_gate: Vec<u32>,
    /// Nets read by at least one cone gate (side inputs and internal
    /// nets). Good-plane changes elsewhere can never affect the faulty
    /// overlay, so the incremental update skips them without scanning
    /// their fanout.
    cone_side: Vec<u32>,
    cone_epoch: u32,
    /// Cone gates in (level, id) topological order, for the faulty-plane
    /// sweep.
    cone_topo: Vec<u32>,
    /// Cone gates in ascending id order, for the D-frontier scan (same
    /// visit order as a whole-netlist scan restricted to the cone).
    cone_by_id: Vec<u32>,
    /// Observation points inside the cone.
    cone_observed: Vec<NetId>,
    /// The fault site the cone structures describe.
    cone_site: Option<FaultSite>,
    /// X-path visited stamps (valid where == `xepoch`).
    xstamp: Vec<u32>,
    xepoch: u32,
    xstack: Vec<u32>,
    work: Vec<u32>,
    /// Undo log of plane writes since search entry, one packed word per
    /// write (see [`trail_entry`]). Backtracking restores from it
    /// instead of re-simulating the X-wipe of retracted decisions, and
    /// the per-resync segments double as the changed-net lists: entries
    /// `[m1..m2)` are exactly the frame-1 nets the resync changed (each
    /// net is written once per level-ordered drain), `[m2..m3)` the
    /// good-plane ones.
    trail: Vec<u32>,
    /// D-frontier output nets of the current objective scan.
    frontier: Vec<u32>,
    /// Pattern snapshot taken at search entry, restored when the search
    /// fails (avoids a heap-allocating clone per targeted fault).
    check_load: Vec<Logic>,
    check_pi: Vec<Logic>,
    /// Identity of the engine the planes were built for.
    owner: Option<(usize, usize, u32, LaunchMode)>,
}

impl PodemScratch {
    /// An unbound scratch; sized and initialised on first use.
    pub fn new() -> Self {
        PodemScratch::default()
    }
}

/// The faulty-plane value of net `i`: the overlay inside the cone, the
/// good plane outside it (where the two machines provably agree).
#[inline]
fn fv(s: &PodemScratch, i: usize) -> Logic {
    if s.cone_net[i] == s.cone_epoch {
        s.faulty2[i]
    } else {
        s.good2[i]
    }
}

/// Seeds the fanout gates of net `n` (raw id) into the event queue.
#[inline]
fn seed_fanout(t: &SimTable, queue: &mut LevelQueue, n: usize) {
    for &g in t.fanout(n) {
        queue.push(t.gate_level(g as usize), g);
    }
}

/// Drains the event queue against one value plane: re-evaluates each
/// scheduled gate and schedules its fanout when the output changed.
/// Levelized order guarantees each gate sees final input values, so the
/// result equals a full levelized pass over the same inputs.
fn drain_events(t: &SimTable, queue: &mut LevelQueue, plane: &mut [Logic]) {
    while let Some(gi) = queue.pop() {
        let g = gi as usize;
        let out = t.eval_plane(g, plane);
        let o = t.output(g) as usize;
        if plane[o] != out {
            plane[o] = out;
            seed_fanout(t, queue, o);
        }
    }
}

/// Plane tags for the undo trail.
const TRAIL_FRAME1: u32 = 0 << 30;
const TRAIL_GOOD2: u32 = 1 << 30;
const TRAIL_FAULTY2: u32 = 2 << 30;
/// Net-id bits of a trail entry.
const TRAIL_NET: u32 = (1 << 24) - 1;

/// Packs one undo-trail word: net id in bits 0..24, the overwritten
/// value in bits 24..26, the plane tag in bits 30..32.
#[inline]
fn trail_entry(net: usize, old: Logic, tag: u32) -> u32 {
    net as u32 | ((old as u32) << 24) | tag
}

/// Decodes a 2-bit logic code (the inverse of `Logic as u32`).
#[inline]
fn logic_from_code(code: u32) -> Logic {
    match code & 3 {
        0 => Logic::Zero,
        1 => Logic::One,
        _ => Logic::X,
    }
}

/// [`drain_events`], additionally logging every overwritten value on
/// the undo trail. The trail segment it appends is also the exact
/// changed-net list of the drain (each net is written at most once per
/// level-ordered drain, so the segment is duplicate-free).
fn drain_events_trail(
    t: &SimTable,
    queue: &mut LevelQueue,
    plane: &mut [Logic],
    trail: &mut Vec<u32>,
    tag: u32,
) {
    while let Some(gi) = queue.pop() {
        let g = gi as usize;
        let out = t.eval_plane(g, plane);
        let o = t.output(g) as usize;
        if plane[o] != out {
            trail.push(trail_entry(o, plane[o], tag));
            plane[o] = out;
            seed_fanout(t, queue, o);
        }
    }
}

/// The PODEM engine, reusable across faults.
#[derive(Debug)]
pub struct Podem<'a> {
    sim: LogicSim<'a>,
    /// Flat topology for the hot event-propagation loops.
    table: SimTable,
    active_clock: ClockId,
    mode: LaunchMode,
    backtrack_limit: u32,
    /// For launch-off-shift: the upstream scan cell feeding each flop at
    /// the launch shift (`None` at chain heads / unstitched flops).
    upstream: Vec<Option<u32>>,
    /// Structural depth per net (level of driving gate + 1), backtrace
    /// heuristic.
    depth: Vec<u32>,
    /// Level per gate, for event scheduling.
    gate_level: Vec<u32>,
    /// Number of distinct gate levels.
    num_levels: u32,
    /// Q net per flop (raw id): the frame-1 injection point of a load bit.
    flop_q: Vec<u32>,
    /// Net per primary input (raw id).
    pi_net: Vec<u32>,
    /// CSR over nets: flops whose frame-2 state is `FromD(net)`. Drives
    /// the incremental frame-2 update from frame-1 changed nets.
    d_watch_off: Vec<u32>,
    d_watch: Vec<u32>,
    /// CSR over load-variable indices: flops whose frame-2 state reads
    /// `pattern.load[var]` directly (`Hold` / `LoadOf`).
    l_watch_off: Vec<u32>,
    l_watch: Vec<u32>,
    /// Frame-1 / frame-2 good planes for the fully-unspecified pattern.
    /// Primary targets always start from it, so entry resync is a copy.
    base_frame1: Vec<Logic>,
    base_good2: Vec<Logic>,
    /// Observation points: D nets of active-domain flops.
    observed: Vec<NetId>,
    /// Same, as a per-net mask for the X-path check.
    observed_mask: Vec<bool>,
    /// Per net: can it structurally reach an observation point? Faults
    /// whose effect net cannot are untestable without any search.
    observable: Vec<bool>,
    /// Frame-2 state source per flop.
    state2_src: Vec<State2Src>,
}

impl<'a> Podem<'a> {
    /// Builds a launch-off-capture engine for one netlist and clock
    /// domain.
    pub fn new(netlist: &'a Netlist, active_clock: ClockId, backtrack_limit: u32) -> Self {
        Self::with_mode(netlist, active_clock, LaunchMode::Capture, backtrack_limit)
    }

    /// Builds an engine with an explicit launch mode.
    pub fn with_mode(
        netlist: &'a Netlist,
        active_clock: ClockId,
        mode: LaunchMode,
        backtrack_limit: u32,
    ) -> Self {
        let sim = LogicSim::new(netlist);
        let lv = sim.levelization();
        let table = SimTable::build_with(netlist, lv);
        let mut depth = vec![0u32; netlist.num_nets()];
        let mut gate_level = vec![0u32; netlist.num_gates()];
        let mut num_levels = 0u32;
        for &g in lv.order() {
            let l = lv.level(g);
            depth[netlist.gate(g).output.index()] = l + 1;
            gate_level[g.index()] = l;
            num_levels = num_levels.max(l + 1);
        }
        let observed = observation_points(netlist, active_clock);
        let mut observed_mask = vec![false; netlist.num_nets()];
        for n in &observed {
            observed_mask[n.index()] = true;
        }
        // Backward reachability from the observation points: a fault
        // whose effect net is outside this set can never produce a
        // good/faulty difference at a capture flop.
        let observable = observable_mask(netlist, &observed);
        // Upstream map for launch-off-shift backtracing.
        let upstream = scan_upstream(netlist);
        let state2_src = state2_sources(netlist, active_clock, mode, &upstream);
        let flop_q: Vec<u32> = netlist.flops().iter().map(|f| f.q.raw()).collect();
        let pi_net: Vec<u32> = netlist.primary_inputs().iter().map(|p| p.raw()).collect();
        let xload = vec![Logic::X; netlist.num_flops()];
        let xpi = vec![Logic::X; netlist.primary_inputs().len()];
        let base_frame1 = sim.eval(&xload, &xpi, None);
        let base_state2 = match mode {
            LaunchMode::Capture => {
                loc::next_state_masked(netlist, &xload, &base_frame1, active_clock)
            }
            LaunchMode::Shift => loc::shift_state(netlist, &xload, Logic::Zero),
        };
        let base_good2 = sim.eval(&base_state2, &xpi, None);
        // Watch lists for the dirty resync: which flops must recompute
        // their frame-2 state when a frame-1 net / a load bit changes.
        let num_flops = netlist.num_flops();
        let mut d_watch_off = vec![0u32; netlist.num_nets() + 1];
        let mut l_watch_off = vec![0u32; num_flops + 1];
        for (i, src) in state2_src.iter().enumerate() {
            match *src {
                State2Src::FromD(d) => d_watch_off[d.index() + 1] += 1,
                State2Src::Hold => l_watch_off[i + 1] += 1,
                State2Src::LoadOf(j) => l_watch_off[j as usize + 1] += 1,
                State2Src::ScanIn => {}
            }
        }
        for n in 0..netlist.num_nets() {
            d_watch_off[n + 1] += d_watch_off[n];
        }
        for j in 0..num_flops {
            l_watch_off[j + 1] += l_watch_off[j];
        }
        let mut d_watch = vec![0u32; d_watch_off[netlist.num_nets()] as usize];
        let mut l_watch = vec![0u32; l_watch_off[num_flops] as usize];
        let mut d_cur = d_watch_off.clone();
        let mut l_cur = l_watch_off.clone();
        for (i, src) in state2_src.iter().enumerate() {
            match *src {
                State2Src::FromD(d) => {
                    d_watch[d_cur[d.index()] as usize] = i as u32;
                    d_cur[d.index()] += 1;
                }
                State2Src::Hold => {
                    l_watch[l_cur[i] as usize] = i as u32;
                    l_cur[i] += 1;
                }
                State2Src::LoadOf(j) => {
                    l_watch[l_cur[j as usize] as usize] = i as u32;
                    l_cur[j as usize] += 1;
                }
                State2Src::ScanIn => {}
            }
        }
        Podem {
            sim,
            table,
            active_clock,
            mode,
            backtrack_limit,
            upstream,
            depth,
            gate_level,
            num_levels,
            flop_q,
            pi_net,
            d_watch_off,
            d_watch,
            l_watch_off,
            l_watch,
            base_frame1,
            base_good2,
            observed,
            observed_mask,
            observable,
            state2_src,
        }
    }

    /// The active clock domain.
    pub fn active_clock(&self) -> ClockId {
        self.active_clock
    }

    /// The net where the fault's effect appears (the net itself for a
    /// stem fault, the reading gate's output for a branch fault).
    fn effect_net(&self, fault: TransitionFault) -> usize {
        match fault.site {
            FaultSite::Net(n) => n.index(),
            FaultSite::Pin { gate, .. } => self.sim.netlist().gate(gate).output.index(),
        }
    }

    /// Tries to extend `pattern` (in place) so it detects `fault`, using
    /// a throwaway scratch. Prefer [`Podem::generate_with_scratch`] in
    /// loops.
    pub fn generate(&self, fault: TransitionFault, pattern: &mut TestPattern) -> PodemOutcome {
        let mut scratch = PodemScratch::default();
        self.generate_with_scratch(fault, pattern, &mut scratch)
    }

    /// Tries to extend `pattern` (in place) so it detects `fault`.
    ///
    /// Existing care bits in `pattern` are treated as hard constraints —
    /// this is what makes greedy dynamic compaction possible. On
    /// `Untestable` / `Aborted`, the pattern is restored to its input
    /// state. The scratch carries the simulated planes from call to
    /// call; any engine may use any scratch (it rebinds itself), but
    /// reuse with the *same* engine is what makes the resync cheap.
    pub fn generate_with_scratch(
        &self,
        fault: TransitionFault,
        pattern: &mut TestPattern,
        scratch: &mut PodemScratch,
    ) -> PodemOutcome {
        if !self.observable[self.effect_net(fault)] {
            // No structural path from the fault effect to a capture
            // point: the faulty plane can never differ at an observed
            // net, so the search below could only ever exhaust or
            // abort. Classify it without simulating anything.
            return PodemOutcome::Untestable;
        }
        scratch.check_load.clear();
        scratch.check_load.extend_from_slice(&pattern.load);
        scratch.check_pi.clear();
        scratch.check_pi.extend_from_slice(&pattern.pi);
        let outcome = self.search(fault, pattern, scratch);
        if outcome != PodemOutcome::Test {
            pattern.load.copy_from_slice(&scratch.check_load);
            pattern.pi.copy_from_slice(&scratch.check_pi);
        }
        outcome
    }

    fn owner_token(&self) -> (usize, usize, u32, LaunchMode) {
        let netlist = self.sim.netlist();
        (
            netlist as *const Netlist as usize,
            netlist.num_nets(),
            self.active_clock.raw(),
            self.mode,
        )
    }

    /// Full (re)initialisation of the scratch planes from `pattern`.
    fn rebuild(&self, pattern: &TestPattern, s: &mut PodemScratch) {
        let netlist = self.sim.netlist();
        s.frame1 = self.sim.eval(&pattern.load, &pattern.pi, None);
        let state2 = match self.mode {
            LaunchMode::Capture => {
                loc::next_state_masked(netlist, &pattern.load, &s.frame1, self.active_clock)
            }
            LaunchMode::Shift => loc::shift_state(netlist, &pattern.load, Logic::Zero),
        };
        s.good2 = self.sim.eval(&state2, &pattern.pi, None);
        s.faulty2.clear();
        s.faulty2.resize(netlist.num_nets(), Logic::X);
        s.queue
            .ensure(self.num_levels as usize, netlist.num_gates());
        s.cone_net.clear();
        s.cone_net.resize(netlist.num_nets(), 0);
        s.cone_gate.clear();
        s.cone_gate.resize(netlist.num_gates(), 0);
        s.cone_side.clear();
        s.cone_side.resize(netlist.num_nets(), 0);
        s.cone_epoch = 0;
        s.cone_site = None;
        s.xstamp.clear();
        s.xstamp.resize(netlist.num_nets(), 0);
        s.xepoch = 0;
        s.owner = Some(self.owner_token());
    }

    /// Event-driven resync of `frame1` / `good2` after input bits
    /// changed. The planes themselves are the cache: flop-Q and PI nets
    /// hold exactly the input values they were last synced with, so
    /// diffing the pattern against them finds every change. Scans every
    /// input; used once per search entry, where the previous pattern's
    /// planes may differ arbitrarily. In-search decisions go through
    /// [`Podem::resim_dirty`] instead.
    fn sync(&self, pattern: &TestPattern, s: &mut PodemScratch) {
        let t = &self.table;
        if pattern.load.iter().all(|v| *v == Logic::X) && pattern.pi.iter().all(|v| *v == Logic::X)
        {
            // Fully-unspecified pattern (every primary target starts
            // here): the synced planes are a precomputed constant.
            s.frame1.copy_from_slice(&self.base_frame1);
            s.good2.copy_from_slice(&self.base_good2);
            return;
        }
        s.queue.begin();
        for (i, &q) in self.flop_q.iter().enumerate() {
            let v = pattern.load[i];
            let q = q as usize;
            if s.frame1[q] != v {
                s.frame1[q] = v;
                seed_fanout(t, &mut s.queue, q);
            }
        }
        for (i, &p) in self.pi_net.iter().enumerate() {
            let v = pattern.pi[i];
            let p = p as usize;
            if s.frame1[p] != v {
                s.frame1[p] = v;
                seed_fanout(t, &mut s.queue, p);
            }
        }
        drain_events(t, &mut s.queue, &mut s.frame1);
        // Frame 2: recompute each flop's launch state (cheap, O(flops))
        // and diff it against the good plane's Q value; primary inputs
        // are held across both frames.
        s.queue.begin();
        for (i, &q) in self.flop_q.iter().enumerate() {
            let nv = match self.state2_src[i] {
                State2Src::FromD(d) => s.frame1[d.index()],
                State2Src::Hold => pattern.load[i],
                State2Src::LoadOf(j) => pattern.load[j as usize],
                State2Src::ScanIn => Logic::Zero,
            };
            let q = q as usize;
            if s.good2[q] != nv {
                s.good2[q] = nv;
                seed_fanout(t, &mut s.queue, q);
            }
        }
        for (i, &p) in self.pi_net.iter().enumerate() {
            let v = pattern.pi[i];
            let p = p as usize;
            if s.good2[p] != v {
                s.good2[p] = v;
                seed_fanout(t, &mut s.queue, p);
            }
        }
        drain_events(t, &mut s.queue, &mut s.good2);
    }

    /// Resync restricted to the decision variables that actually changed
    /// (`dirty`): seeds only their nets in frame 1, uses the D/load watch
    /// lists to find the frame-2 flops affected, and event-propagates
    /// from there. Produces exactly the planes a full [`Podem::sync`]
    /// would — both compute the fixpoint of the same input change set —
    /// but skips the O(flops + PIs) input scan per decision. Finishes by
    /// updating the faulty cone from the collected good-plane changes.
    fn resim_dirty(
        &self,
        fault: TransitionFault,
        v_init: Logic,
        pattern: &TestPattern,
        s: &mut PodemScratch,
        dirty: &[Var],
    ) {
        let t = &self.table;
        // Frame 1: only the dirty variables' nets can have changed.
        s.queue.begin();
        let m1 = s.trail.len();
        for &var in dirty {
            let (net, v) = match var {
                Var::Load(i) => (self.flop_q[i as usize] as usize, pattern.load[i as usize]),
                Var::Pi(i) => (self.pi_net[i as usize] as usize, pattern.pi[i as usize]),
            };
            if s.frame1[net] != v {
                s.trail.push(trail_entry(net, s.frame1[net], TRAIL_FRAME1));
                s.frame1[net] = v;
                seed_fanout(t, &mut s.queue, net);
            }
        }
        drain_events_trail(t, &mut s.queue, &mut s.frame1, &mut s.trail, TRAIL_FRAME1);
        // Frame 2 seeds: flops capturing a changed frame-1 D net (read
        // off the trail segment the frame-1 pass appended), flops reading
        // a dirty load bit, and dirty PIs (held across frames).
        s.queue.begin();
        let m2 = s.trail.len();
        for idx in m1..m2 {
            let c = (s.trail[idx] & TRAIL_NET) as usize;
            let (w0, w1) = (
                self.d_watch_off[c] as usize,
                self.d_watch_off[c + 1] as usize,
            );
            for w in w0..w1 {
                let f = self.d_watch[w] as usize;
                let q = self.flop_q[f] as usize;
                let nv = s.frame1[c];
                if s.good2[q] != nv {
                    s.trail.push(trail_entry(q, s.good2[q], TRAIL_GOOD2));
                    s.good2[q] = nv;
                    seed_fanout(t, &mut s.queue, q);
                }
            }
        }
        for &var in dirty {
            match var {
                Var::Load(j) => {
                    let (w0, w1) = (
                        self.l_watch_off[j as usize] as usize,
                        self.l_watch_off[j as usize + 1] as usize,
                    );
                    for w in w0..w1 {
                        let f = self.l_watch[w] as usize;
                        let nv = match self.state2_src[f] {
                            State2Src::Hold => pattern.load[f],
                            State2Src::LoadOf(u) => pattern.load[u as usize],
                            _ => unreachable!("l_watch only lists Hold/LoadOf flops"),
                        };
                        let q = self.flop_q[f] as usize;
                        if s.good2[q] != nv {
                            s.trail.push(trail_entry(q, s.good2[q], TRAIL_GOOD2));
                            s.good2[q] = nv;
                            seed_fanout(t, &mut s.queue, q);
                        }
                    }
                }
                Var::Pi(i) => {
                    let p = self.pi_net[i as usize] as usize;
                    let v = pattern.pi[i as usize];
                    if s.good2[p] != v {
                        s.trail.push(trail_entry(p, s.good2[p], TRAIL_GOOD2));
                        s.good2[p] = v;
                        seed_fanout(t, &mut s.queue, p);
                    }
                }
            }
        }
        drain_events_trail(t, &mut s.queue, &mut s.good2, &mut s.trail, TRAIL_GOOD2);
        self.update_faulty(fault, v_init, s, m2);
    }

    /// Rewinds the undo trail to `mark`, restoring every plane write made
    /// since. Reverse order makes multiple writes to one net unwind
    /// correctly.
    fn restore_trail(s: &mut PodemScratch, mark: usize) {
        while s.trail.len() > mark {
            let e = s.trail.pop().expect("trail length checked");
            let net = (e & TRAIL_NET) as usize;
            let old = logic_from_code(e >> 24);
            match e >> 30 {
                0 => s.frame1[net] = old,
                1 => s.good2[net] = old,
                _ => s.faulty2[net] = old,
            }
        }
    }

    /// Event-driven faulty-cone update after `good2` changed on the nets
    /// recorded in trail segment `[good_from..]`: re-evaluates cone gates
    /// reading a changed net and propagates within the cone. Equivalent
    /// to a full [`Podem::rebuild_faulty`] sweep because every cone gate
    /// whose inputs are unchanged (in both planes) keeps its output, and
    /// the level-ordered drain computes the same fixpoint for the rest.
    fn update_faulty(
        &self,
        fault: TransitionFault,
        v_init: Logic,
        s: &mut PodemScratch,
        good_from: usize,
    ) {
        let t = &self.table;
        let epoch = s.cone_epoch;
        // `begin` is deferred until the first seed: most resimulations
        // change nothing on the cone's input side, and skipping the
        // restart avoids clearing the previous drain's touched buckets.
        let mut any = false;
        let good_end = s.trail.len();
        for idx in good_from..good_end {
            let c = (s.trail[idx] & TRAIL_NET) as usize;
            if s.cone_side[c] != epoch {
                continue;
            }
            for &g in t.fanout(c) {
                if s.cone_gate[g as usize] == epoch {
                    if !any {
                        s.queue.begin();
                        any = true;
                    }
                    s.queue.push(t.gate_level(g as usize), g);
                }
            }
        }
        if !any {
            return;
        }
        let injected = match fault.site {
            FaultSite::Pin { gate, pin } => (gate.index(), pin as usize),
            FaultSite::Net(_) => (usize::MAX, usize::MAX),
        };
        while let Some(gi) = s.queue.pop() {
            let g = gi as usize;
            let ins = t.inputs(g);
            let mut code = 0usize;
            for (k, &inp) in ins.iter().enumerate() {
                let i = inp as usize;
                let mut v = if s.cone_net[i] == epoch {
                    s.faulty2[i]
                } else {
                    s.good2[i]
                };
                if injected == (g, k) {
                    v = v_init;
                }
                code |= (v as usize) << (2 * k);
            }
            let nv = t.eval_coded(g, code);
            let o = t.output(g) as usize;
            if s.faulty2[o] != nv {
                s.trail.push(trail_entry(o, s.faulty2[o], TRAIL_FAULTY2));
                s.faulty2[o] = nv;
                for &succ in t.fanout(o) {
                    if s.cone_gate[succ as usize] == epoch {
                        s.queue.push(t.gate_level(succ as usize), succ);
                    }
                }
            }
        }
    }

    /// Marks the output cone of `site` and builds the cone gate orders
    /// and in-cone observation list. Only cone nets can ever carry a
    /// good/faulty difference, so every downstream consumer (faulty
    /// sweep, D-frontier scan, detection check, X-path) is restricted to
    /// these structures.
    fn set_cone(&self, site: FaultSite, s: &mut PodemScratch) {
        let netlist = self.sim.netlist();
        if s.cone_epoch == u32::MAX {
            s.cone_net.fill(0);
            s.cone_gate.fill(0);
            s.cone_side.fill(0);
            s.cone_epoch = 1;
        } else {
            s.cone_epoch += 1;
        }
        let epoch = s.cone_epoch;
        s.cone_topo.clear();
        s.work.clear();
        match site {
            FaultSite::Net(n) => {
                s.cone_net[n.index()] = epoch;
                s.work.push(n.raw());
            }
            FaultSite::Pin { gate, .. } => {
                // The reading gate itself is the cone root: the
                // difference is born inside it.
                s.cone_gate[gate.index()] = epoch;
                s.cone_topo.push(gate.raw());
                let out = netlist.gate(gate).output;
                s.cone_net[out.index()] = epoch;
                s.work.push(out.raw());
            }
        }
        let t = &self.table;
        while let Some(ni) = s.work.pop() {
            for &g in t.fanout(ni as usize) {
                let g = g as usize;
                if s.cone_gate[g] != epoch {
                    s.cone_gate[g] = epoch;
                    s.cone_topo.push(g as u32);
                    let out = t.output(g) as usize;
                    if s.cone_net[out] != epoch {
                        s.cone_net[out] = epoch;
                        s.work.push(out as u32);
                    }
                }
            }
        }
        for &g in &s.cone_topo {
            for &inp in t.inputs(g as usize) {
                s.cone_side[inp as usize] = epoch;
            }
        }
        s.cone_topo
            .sort_unstable_by_key(|&g| (self.gate_level[g as usize], g));
        s.cone_by_id.clear();
        s.cone_by_id.extend_from_slice(&s.cone_topo);
        s.cone_by_id.sort_unstable();
        s.cone_observed.clear();
        for &o in &self.observed {
            if s.cone_net[o.index()] == epoch {
                s.cone_observed.push(o);
            }
        }
        s.cone_site = Some(site);
    }

    /// Rebuilds the faulty-plane overlay in one topological sweep over
    /// the cone. Equivalent to a full faulty-machine evaluation because
    /// outside the cone the faulty machine equals `good2` (which `fv`
    /// reads through to), and inside it every net is rewritten here.
    fn rebuild_faulty(&self, fault: TransitionFault, v_init: Logic, s: &mut PodemScratch) {
        let t = &self.table;
        let epoch = s.cone_epoch;
        if let FaultSite::Net(n) = fault.site {
            // The stem fault forces the net itself; its driver is never
            // in the cone (no combinational cycles), so nothing below
            // overwrites it.
            s.faulty2[n.index()] = v_init;
        }
        let injected = match fault.site {
            FaultSite::Pin { gate, pin } => (gate.index(), pin as usize),
            FaultSite::Net(_) => (usize::MAX, usize::MAX),
        };
        let topo = std::mem::take(&mut s.cone_topo);
        for &gi in &topo {
            let g = gi as usize;
            let ins = t.inputs(g);
            let mut code = 0usize;
            for (k, &inp) in ins.iter().enumerate() {
                let i = inp as usize;
                let mut v = if s.cone_net[i] == epoch {
                    s.faulty2[i]
                } else {
                    s.good2[i]
                };
                if injected == (g, k) {
                    v = v_init;
                }
                code |= (v as usize) << (2 * k);
            }
            s.faulty2[t.output(g) as usize] = t.eval_coded(g, code);
        }
        s.cone_topo = topo;
    }

    fn search(
        &self,
        fault: TransitionFault,
        pattern: &mut TestPattern,
        s: &mut PodemScratch,
    ) -> PodemOutcome {
        let netlist = self.sim.netlist();
        let v_init = Logic::from_bool(fault.polarity.initial_value());
        let v_final = Logic::from_bool(fault.polarity.final_value());
        let site_net = fault.site.net(netlist);
        if s.owner != Some(self.owner_token()) {
            self.rebuild(pattern, s);
        } else {
            self.sync(pattern, s);
        }
        if s.cone_site != Some(fault.site) {
            self.set_cone(fault.site, s);
        }
        self.rebuild_faulty(fault, v_init, s);
        s.trail.clear();
        // Decision stack: (var, value currently tried, flipped already?,
        // trail mark at decision time).
        let mut stack: Vec<(Var, Logic, bool, u32)> = Vec::new();
        // Variables mutated since the last resync; only their cones need
        // re-simulation.
        let mut dirty: Vec<Var> = Vec::new();
        let mut backtracks = 0u32;
        let trace = std::env::var_os("PODEM_TRACE").is_some();
        loop {
            match self.objective(s, fault, site_net, v_init, v_final) {
                Objective::Detected => return PodemOutcome::Test,
                Objective::Assign(net, value, frame) => {
                    if trace {
                        eprintln!(
                            "objective: {net:?}={value} in {frame:?} (stack {} bt {backtracks})",
                            stack.len()
                        );
                    }
                    match self.backtrace(s, net, value, frame) {
                        Some((var, val)) => {
                            if trace {
                                eprintln!("  decide {var:?} = {val}");
                            }
                            self.set_var(pattern, var, val);
                            stack.push((var, val, false, s.trail.len() as u32));
                            dirty.clear();
                            dirty.push(var);
                            self.resim_dirty(fault, v_init, pattern, s, &dirty);
                        }
                        None => {
                            if trace {
                                eprintln!("  backtrace failed -> conflict");
                            }
                            // No unassigned input reaches the objective —
                            // treat as a conflict.
                            dirty.clear();
                            if !self.backtrack(pattern, &mut stack, s, &mut dirty) {
                                return PodemOutcome::Untestable;
                            }
                            backtracks += 1;
                            if backtracks >= self.backtrack_limit {
                                Self::restore_trail(s, 0);
                                return PodemOutcome::Aborted;
                            }
                            self.resim_dirty(fault, v_init, pattern, s, &dirty);
                        }
                    }
                }
                Objective::Conflict => {
                    if trace {
                        eprintln!("conflict (stack {} bt {backtracks})", stack.len());
                    }
                    dirty.clear();
                    if !self.backtrack(pattern, &mut stack, s, &mut dirty) {
                        return PodemOutcome::Untestable;
                    }
                    backtracks += 1;
                    if backtracks >= self.backtrack_limit {
                        Self::restore_trail(s, 0);
                        return PodemOutcome::Aborted;
                    }
                    self.resim_dirty(fault, v_init, pattern, s, &dirty);
                }
            }
        }
    }

    fn set_var(&self, pattern: &mut TestPattern, var: Var, value: Logic) {
        match var {
            Var::Load(i) => pattern.load[i as usize] = value,
            Var::Pi(i) => pattern.pi[i as usize] = value,
        }
    }

    /// Flips the most recent unflipped decision; pops flipped ones.
    /// Returns `false` when the stack empties (search exhausted). Each
    /// pop rewinds the undo trail to the decision's mark, restoring the
    /// planes to their exact pre-decision state — no re-simulation of
    /// retracted assignments. Only the flipped variable is appended to
    /// `dirty`; the caller resyncs just that one change.
    fn backtrack(
        &self,
        pattern: &mut TestPattern,
        stack: &mut Vec<(Var, Logic, bool, u32)>,
        s: &mut PodemScratch,
        dirty: &mut Vec<Var>,
    ) -> bool {
        while let Some((var, val, flipped, mark)) = stack.pop() {
            Self::restore_trail(s, mark as usize);
            if flipped {
                self.set_var(pattern, var, Logic::X);
            } else {
                let nv = !val;
                self.set_var(pattern, var, nv);
                stack.push((var, nv, true, mark));
                dirty.push(var);
                return true;
            }
        }
        false
    }

    fn objective(
        &self,
        s: &mut PodemScratch,
        fault: TransitionFault,
        site_net: NetId,
        v_init: Logic,
        v_final: Logic,
    ) -> Objective {
        // 1. Launch in frame 1.
        let s1 = s.frame1[site_net.index()];
        if s1 == Logic::X {
            return Objective::Assign(site_net, v_init, Frame::One);
        }
        if s1 != v_init {
            return Objective::Conflict;
        }
        // 2. Excitation in frame 2 (good machine reaches the final value).
        let s2 = s.good2[site_net.index()];
        if s2 == Logic::X {
            return Objective::Assign(site_net, v_final, Frame::Two);
        }
        if s2 != v_final {
            return Objective::Conflict;
        }
        // 3. Detection at an observed capture flop? Only in-cone
        // observation points can differ.
        for &obs in &s.cone_observed {
            let g = s.good2[obs.index()];
            let f = s.faulty2[obs.index()];
            if g.is_known() && f.is_known() && g != f {
                return Objective::Detected;
            }
        }
        // 4. Drive the D-frontier. Gates outside the cone see identical
        // good/faulty input values, so scanning the cone's gates in
        // ascending id order visits exactly the candidates a full scan
        // would, in the same order.
        let t = &self.table;
        let mut best: Option<(u32, NetId, Logic)> = None;
        let mut frontier = std::mem::take(&mut s.frontier);
        frontier.clear();
        // For a branch (pin) fault, the injected gate is on the frontier
        // whenever its output is undetermined: its input *nets* carry no
        // good/faulty difference — the difference is born inside the gate
        // — so the generic scan below would never see it.
        if let FaultSite::Pin { gate, pin } = fault.site {
            let g = gate.index();
            let out = t.output(g) as usize;
            let undetermined = !(s.good2[out].is_known() && s.faulty2[out].is_known());
            if undetermined {
                if let Some((p, val)) = self.side_objective(s, g, pin as usize) {
                    frontier.push(out as u32);
                    let side = t.inputs(g)[p];
                    best = Some((self.depth[side as usize], NetId::new(side), val));
                }
            }
        }
        for idx in 0..s.cone_by_id.len() {
            let g = s.cone_by_id[idx] as usize;
            let out = t.output(g) as usize;
            let out_diff_known = s.good2[out].is_known() && s.faulty2[out].is_known();
            if out_diff_known {
                // Settled (no difference) or already propagated past.
                continue;
            }
            // Output X in some plane: is a difference arriving?
            let mut has_diff_input = false;
            for &inp in t.inputs(g) {
                let i = inp as usize;
                let gv = s.good2[i];
                let f = fv(s, i);
                if gv.is_known() && f.is_known() && gv != f {
                    has_diff_input = true;
                    break;
                }
            }
            if !has_diff_input {
                continue;
            }
            // Pick an X side input and its non-controlling value.
            if let Some((pin, val)) = self.propagation_objective(s, g) {
                frontier.push(out as u32);
                let side = t.inputs(g)[pin];
                let key = self.depth[side as usize]; // prefer shallow side inputs
                if best.is_none_or(|(bk, _, _)| key < bk) {
                    best = Some((key, NetId::new(side), val));
                }
            }
        }
        // X-path check: some frontier output must still reach an observed
        // capture point through not-yet-blocked (X) nets, otherwise the
        // current assignments can never detect the fault.
        let no_x_path = best.is_some() && !self.x_path_exists(s, &frontier);
        s.frontier = frontier;
        if no_x_path {
            return Objective::Conflict;
        }
        match best {
            Some((_, net, val)) => Objective::Assign(net, val, Frame::Two),
            None => Objective::Conflict,
        }
    }

    /// Forward reachability from the D-frontier through X-valued nets to
    /// any observation point (the classic PODEM X-path check).
    fn x_path_exists(&self, s: &mut PodemScratch, frontier_nets: &[u32]) -> bool {
        let t = &self.table;
        if s.xepoch == u32::MAX {
            s.xstamp.fill(0);
            s.xepoch = 1;
        } else {
            s.xepoch += 1;
        }
        let epoch = s.xepoch;
        s.xstack.clear();
        s.xstack.extend_from_slice(frontier_nets);
        while let Some(ni) = s.xstack.pop() {
            let i = ni as usize;
            if s.xstamp[i] == epoch {
                continue;
            }
            s.xstamp[i] = epoch;
            if self.observed_mask[i] {
                return true;
            }
            for &g in t.fanout(i) {
                let o = t.output(g as usize) as usize;
                // Follow only nets whose value is still undecided in at
                // least one plane (a known-equal output blocks the path).
                let gv = s.good2[o];
                let fvv = fv(s, o);
                let blocked = gv.is_known() && fvv.is_known() && gv == fvv;
                if !blocked && s.xstamp[o] != epoch {
                    s.xstack.push(o as u32);
                }
            }
        }
        false
    }

    /// For a D-frontier gate, returns `(pin index, value)` of an
    /// unassigned side input to set non-controlling.
    fn propagation_objective(&self, s: &PodemScratch, g: usize) -> Option<(usize, Logic)> {
        let diff_pin = self.table.inputs(g).iter().position(|&inp| {
            let gv = s.good2[inp as usize];
            let fvv = fv(s, inp as usize);
            gv.is_known() && fvv.is_known() && gv != fvv
        })?;
        self.side_objective(s, g, diff_pin)
    }

    /// Side-input objective for a frontier gate whose difference arrives
    /// on `diff_pin`: pick the first X side input and its non-controlling
    /// value.
    fn side_objective(
        &self,
        s: &PodemScratch,
        g: usize,
        diff_pin: usize,
    ) -> Option<(usize, Logic)> {
        let t = &self.table;
        let mut pin = None;
        for (i, &inp) in t.inputs(g).iter().enumerate() {
            if i != diff_pin
                && (s.good2[inp as usize] == Logic::X || fv(s, inp as usize) == Logic::X)
            {
                pin = Some(i);
                break;
            }
        }
        let pin = pin?;
        let value = match t.kind(g) {
            CellKind::Buf | CellKind::Inv => return None, // single input, no side
            CellKind::And2 | CellKind::And3 | CellKind::Nand2 | CellKind::Nand3 => Logic::One,
            CellKind::Or2 | CellKind::Or3 | CellKind::Nor2 | CellKind::Nor3 => Logic::Zero,
            CellKind::Xor2 | CellKind::Xnor2 => Logic::Zero,
            CellKind::Mux2 => {
                // Route the differing data input through the select
                // (sel = 0 routes input a, sel = 1 routes input b); any
                // other X pin takes the heuristic 0.
                if diff_pin == 2 && pin == 0 {
                    Logic::One
                } else {
                    Logic::Zero
                }
            }
            CellKind::Aoi22 | CellKind::Oai22 => {
                // Partner within the same product must be non-controlling
                // (1 for AOI's AND pair, 0 for OAI's OR pair); the other
                // product must be fully non-controlling (0 / 1).
                let same_product = (pin / 2) == (diff_pin / 2);
                match (t.kind(g), same_product) {
                    (CellKind::Aoi22, true) => Logic::One,
                    (CellKind::Aoi22, false) => Logic::Zero,
                    (CellKind::Oai22, true) => Logic::Zero,
                    (CellKind::Oai22, false) => Logic::One,
                    _ => unreachable!(),
                }
            }
        };
        Some((pin, value))
    }

    /// Maps an objective `(net = value in frame)` back to an unassigned
    /// decision variable and a value for it.
    fn backtrace(
        &self,
        s: &PodemScratch,
        mut net: NetId,
        mut value: Logic,
        mut frame: Frame,
    ) -> Option<(Var, Logic)> {
        let netlist = self.sim.netlist();
        // Bounded walk; each step descends through the driving gate.
        for _ in 0..4 * netlist.num_nets().max(16) {
            match netlist.net(net).source {
                Some(NetSource::PrimaryInput) => {
                    let idx = netlist
                        .primary_inputs()
                        .iter()
                        .position(|&p| p == net)
                        .expect("PI net is registered") as u32;
                    return Some((Var::Pi(idx), value));
                }
                Some(NetSource::Const(_)) => return None,
                Some(NetSource::Flop(f)) => match frame {
                    Frame::One => return Some((Var::Load(f.raw()), value)),
                    Frame::Two => match self.mode {
                        LaunchMode::Capture => {
                            let flop = netlist.flop(f);
                            if flop.clock == self.active_clock {
                                net = flop.d;
                                frame = Frame::One;
                            } else {
                                return Some((Var::Load(f.raw()), value));
                            }
                        }
                        LaunchMode::Shift => {
                            // Frame-2 state came from the upstream scan
                            // cell's load; chain heads hold the constant
                            // scan-in (would never be X here).
                            match self.upstream[f.index()] {
                                Some(up) => return Some((Var::Load(up), value)),
                                None => return None,
                            }
                        }
                    },
                },
                Some(NetSource::Gate(g)) => {
                    let plane = match frame {
                        Frame::One => &s.frame1,
                        Frame::Two => &s.good2,
                    };
                    let (next, nval) = self.choose_input(plane, g.index(), value)?;
                    net = next;
                    value = nval;
                }
                None => return None,
            }
        }
        None
    }

    /// Chooses which X input of `g` to pursue to justify `out = value`,
    /// returning the input net and its target value.
    fn choose_input(&self, plane: &[Logic], g: usize, value: Logic) -> Option<(NetId, Logic)> {
        let t = &self.table;
        let ins = t.inputs(g);
        let mut xbuf = [0u32; 4];
        let mut xn = 0usize;
        for &inp in ins {
            if plane[inp as usize] == Logic::X {
                xbuf[xn] = inp;
                xn += 1;
            }
        }
        if xn == 0 {
            return None;
        }
        let x_inputs = &xbuf[..xn];
        // `min_by_key` keeps the first minimum and `max_by_key` the last
        // maximum; the backtrace heuristic's tie-breaks depend on it.
        let easiest = |nets: &[u32]| {
            nets.iter()
                .copied()
                .min_by_key(|&n| self.depth[n as usize])
                .expect("non-empty")
        };
        let hardest = |nets: &[u32]| {
            nets.iter()
                .copied()
                .max_by_key(|&n| self.depth[n as usize])
                .expect("non-empty")
        };
        let v = value;
        let (net, val) = match t.kind(g) {
            CellKind::Buf => (x_inputs[0], v),
            CellKind::Inv => (x_inputs[0], !v),
            CellKind::And2 | CellKind::And3 => match v {
                Logic::One => (hardest(x_inputs), Logic::One),
                _ => (easiest(x_inputs), Logic::Zero),
            },
            CellKind::Nand2 | CellKind::Nand3 => match v {
                Logic::Zero => (hardest(x_inputs), Logic::One),
                _ => (easiest(x_inputs), Logic::Zero),
            },
            CellKind::Or2 | CellKind::Or3 => match v {
                Logic::Zero => (hardest(x_inputs), Logic::Zero),
                _ => (easiest(x_inputs), Logic::One),
            },
            CellKind::Nor2 | CellKind::Nor3 => match v {
                Logic::One => (hardest(x_inputs), Logic::Zero),
                _ => (easiest(x_inputs), Logic::One),
            },
            CellKind::Xor2 | CellKind::Xnor2 => {
                let chosen = easiest(x_inputs);
                let other = ins.iter().copied().find(|&n| n != chosen).unwrap_or(chosen);
                let other_v = plane[other as usize].to_bool().unwrap_or(false);
                let want = match t.kind(g) {
                    CellKind::Xor2 => v ^ Logic::from_bool(other_v),
                    _ => !(v ^ Logic::from_bool(other_v)),
                };
                (chosen, want)
            }
            CellKind::Mux2 => {
                // Every branch below must return an X net, or backtrace
                // would wander into a determined cone and report a false
                // conflict (breaking PODEM's completeness).
                let sel = ins[0];
                let a = ins[1];
                let c = ins[2];
                match plane[sel as usize] {
                    Logic::Zero => (a, v),
                    Logic::One => (c, v),
                    Logic::X => {
                        // Prefer steering the select toward a data input
                        // that already equals the target.
                        if plane[a as usize] == v {
                            (sel, Logic::Zero)
                        } else if plane[c as usize] == v {
                            (sel, Logic::One)
                        } else if plane[a as usize] == Logic::X {
                            (a, v)
                        } else if plane[c as usize] == Logic::X {
                            (c, v)
                        } else {
                            // Both data inputs known and wrong: decide the
                            // select; the conflict will surface upstream.
                            (sel, Logic::Zero)
                        }
                    }
                }
            }
            CellKind::Aoi22 | CellKind::Oai22 => {
                // Heuristic: to raise an AOI output, drive an X input of a
                // not-yet-0 product to 0; to lower it, drive an X input to
                // 1 (dually for OAI).
                let inverting_low = match t.kind(g) {
                    CellKind::Aoi22 => Logic::Zero,
                    _ => Logic::One,
                };
                let target = if v == Logic::One {
                    inverting_low
                } else {
                    !inverting_low
                };
                (easiest(x_inputs), target)
            }
        };
        Some((NetId::new(net), val))
    }
}

enum Objective {
    Detected,
    Assign(NetId, Logic, Frame),
    Conflict,
}

#[cfg(test)]
mod tests {
    use super::*;
    use scap_dft::{FillPolicy, PatternBatch};
    use scap_netlist::{ClockEdge, NetlistBuilder};
    use scap_sim::{FaultList, Polarity, TransitionFaultSim};

    /// Small but non-trivial: 4 flops, AND/XOR logic, one observation.
    fn mini() -> Netlist {
        let mut b = NetlistBuilder::new("m");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 100e6);
        let mut q = Vec::new();
        let mut d = Vec::new();
        for i in 0..4 {
            q.push(b.add_net(format!("q{i}")));
            d.push(b.add_net(format!("d{i}")));
        }
        let w1 = b.add_net("w1");
        let w2 = b.add_net("w2");
        b.add_gate(CellKind::And2, &[q[0], q[1]], w1, blk).unwrap();
        b.add_gate(CellKind::Xor2, &[w1, q[2]], w2, blk).unwrap();
        b.add_gate(CellKind::Inv, &[w2], d[0], blk).unwrap();
        b.add_gate(CellKind::Buf, &[q[0]], d[1], blk).unwrap();
        b.add_gate(CellKind::Nor2, &[q[2], q[3]], d[2], blk)
            .unwrap();
        b.add_gate(CellKind::Nand2, &[w2, q[3]], d[3], blk).unwrap();
        for i in 0..4 {
            b.add_flop(format!("ff{i}"), d[i], q[i], clk, ClockEdge::Rising, blk)
                .unwrap();
        }
        b.finish().unwrap()
    }

    /// Every test PODEM claims must be confirmed by the independent fault
    /// simulator.
    #[test]
    fn podem_tests_are_confirmed_by_fault_simulation() {
        let n = mini();
        let podem = Podem::new(&n, ClockId::new(0), 200);
        let fsim = TransitionFaultSim::new(&n, ClockId::new(0));
        let faults = FaultList::full(&n);
        let mut rng = rand::rngs::mock::StepRng::new(0, 0x9E3779B97F4A7C15);
        let mut found = 0;
        for &fault in faults.faults() {
            let mut pattern = TestPattern::unspecified(&n);
            if podem.generate(fault, &mut pattern) == PodemOutcome::Test {
                found += 1;
                let filled = pattern.fill(&n, FillPolicy::Zero, &mut rng);
                let batch = PatternBatch::pack(std::slice::from_ref(&filled));
                let summary = fsim.detect_batch(&batch.load_words, &batch.pi_words, 1, &[fault]);
                assert_eq!(
                    summary.detect_mask[0] & 1,
                    1,
                    "PODEM test for {fault:?} not confirmed by fault sim: {pattern:?}"
                );
            }
        }
        assert!(
            found >= faults.faults().len() / 2,
            "PODEM found only {found}/{}",
            faults.faults().len()
        );
    }

    /// A scratch carried across faults must behave exactly like a fresh
    /// scratch per fault: same outcomes, same pattern stream.
    #[test]
    fn shared_scratch_matches_fresh_scratch() {
        let n = mini();
        let podem = Podem::new(&n, ClockId::new(0), 200);
        let faults = FaultList::full(&n);
        let mut shared = PodemScratch::new();
        let mut pat_fresh = TestPattern::unspecified(&n);
        let mut pat_shared = TestPattern::unspecified(&n);
        for &fault in faults.faults() {
            let fresh = podem.generate(fault, &mut pat_fresh);
            let reused = podem.generate_with_scratch(fault, &mut pat_shared, &mut shared);
            assert_eq!(fresh, reused, "outcome diverged on {fault:?}");
            assert_eq!(pat_fresh, pat_shared, "pattern diverged on {fault:?}");
        }
    }

    #[test]
    fn untestable_fault_is_classified() {
        // q1's only fanout is a gate feeding d1... build a truly untestable
        // case: a net whose both polarities can't launch because the flop
        // reloads itself with its own value (d = q): no transition possible.
        let mut b = NetlistBuilder::new("u");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 100e6);
        let q = b.add_net("q");
        let d = b.add_net("d");
        let q2 = b.add_net("q2");
        b.add_gate(CellKind::Buf, &[q], d, blk).unwrap();
        b.add_flop("ff", d, q, clk, ClockEdge::Rising, blk).unwrap();
        b.add_flop("ff2", d, q2, clk, ClockEdge::Rising, blk)
            .unwrap();
        let n = b.finish().unwrap();
        let podem = Podem::new(&n, ClockId::new(0), 1000);
        // STR on q: frame1 q = 0 requires load 0; frame2 q = next state =
        // buf(q) = 0 -> can never be 1. Untestable.
        let fault = TransitionFault::new(FaultSite::Net(NetId::new(0)), Polarity::SlowToRise);
        let mut pattern = TestPattern::unspecified(&n);
        assert_eq!(
            podem.generate(fault, &mut pattern),
            PodemOutcome::Untestable
        );
        // Pattern unchanged on failure.
        assert_eq!(pattern, TestPattern::unspecified(&n));
    }

    #[test]
    fn unobservable_fault_is_rejected_without_search() {
        // w feeds nothing observable: its only reader drives a net with
        // no flop behind it.
        let mut b = NetlistBuilder::new("o");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 100e6);
        let a = b.add_primary_input("a");
        let q = b.add_net("q");
        let d = b.add_net("d");
        let dead = b.add_net("dead");
        b.add_gate(CellKind::Inv, &[q], d, blk).unwrap();
        b.add_gate(CellKind::Inv, &[a], dead, blk).unwrap();
        b.add_primary_output(dead);
        b.add_flop("ff", d, q, clk, ClockEdge::Rising, blk).unwrap();
        let n = b.finish().unwrap();
        let podem = Podem::new(&n, ClockId::new(0), 1000);
        // `dead` never reaches a capture flop (primary outputs are not
        // observed in this flow), so the fault is untestable a priori.
        let fault = TransitionFault::new(FaultSite::Net(dead), Polarity::SlowToFall);
        let mut pattern = TestPattern::unspecified(&n);
        assert_eq!(
            podem.generate(fault, &mut pattern),
            PodemOutcome::Untestable
        );
        assert_eq!(pattern, TestPattern::unspecified(&n));
    }

    #[test]
    fn secondary_targeting_respects_existing_assignments() {
        let n = mini();
        let podem = Podem::new(&n, ClockId::new(0), 200);
        let faults = FaultList::full(&n);
        // Find two faults that can share a pattern.
        let mut pattern = TestPattern::unspecified(&n);
        let mut merged = 0;
        for &fault in faults.faults() {
            let before = pattern.clone();
            match podem.generate(fault, &mut pattern) {
                PodemOutcome::Test => {
                    merged += 1;
                    // All previously specified bits must be unchanged.
                    for (a, b) in before.load.iter().zip(&pattern.load) {
                        if a.is_known() {
                            assert_eq!(a, b, "constraint violated");
                        }
                    }
                    if merged == 3 {
                        break;
                    }
                }
                _ => {
                    assert_eq!(pattern, before, "failed run must restore");
                }
            }
        }
        assert!(merged >= 2, "compaction should merge at least two faults");
    }
}
