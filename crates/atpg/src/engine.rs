//! The two-time-frame PODEM engine.
//!
//! Decision variables are the scan-load bits (pseudo-primary inputs) and
//! the held primary inputs. After every decision the engine re-simulates
//! both frames three-valued — frame 1 plain, frame 2 as a good/faulty
//! plane pair with the fault site stuck at its pre-transition value — and
//! derives the next objective:
//!
//! 1. launch: frame-1 site value = initial value,
//! 2. excitation: frame-2 good site value = final value,
//! 3. propagation: drive a D-frontier gate's side inputs non-controlling
//!    until the good/faulty difference reaches an observed capture flop.

use scap_dft::TestPattern;
use scap_netlist::{CellKind, ClockId, GateId, Logic, NetId, NetSource, Netlist};
use scap_sim::{loc, FaultSite, Injection, LaunchMode, LogicSim, TransitionFault};

/// Outcome of one PODEM run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PodemOutcome {
    /// A test was found; the pattern has been extended in place.
    Test,
    /// No test exists (search space exhausted without hitting the
    /// backtrack limit). Under a constrained (secondary) run this only
    /// means "untestable given the existing assignments".
    Untestable,
    /// The backtrack limit was hit first.
    Aborted,
}

/// Which time frame an objective lives in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Frame {
    One,
    Two,
}

/// A decision variable: a scan-load bit or a primary input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Var {
    Load(u32),
    Pi(u32),
}

#[derive(Debug)]
struct SimState {
    frame1: Vec<Logic>,
    good2: Vec<Logic>,
    faulty2: Vec<Logic>,
}

/// The PODEM engine, reusable across faults.
#[derive(Debug)]
pub struct Podem<'a> {
    sim: LogicSim<'a>,
    active_clock: ClockId,
    mode: LaunchMode,
    backtrack_limit: u32,
    /// For launch-off-shift: the upstream scan cell feeding each flop at
    /// the launch shift (`None` at chain heads / unstitched flops).
    upstream: Vec<Option<u32>>,
    /// Structural depth per net (level of driving gate + 1), backtrace
    /// heuristic.
    depth: Vec<u32>,
    /// Observation points: D nets of active-domain flops.
    observed: Vec<NetId>,
    /// Same, as a per-net mask for the X-path check.
    observed_mask: Vec<bool>,
}

impl<'a> Podem<'a> {
    /// Builds a launch-off-capture engine for one netlist and clock
    /// domain.
    pub fn new(netlist: &'a Netlist, active_clock: ClockId, backtrack_limit: u32) -> Self {
        Self::with_mode(netlist, active_clock, LaunchMode::Capture, backtrack_limit)
    }

    /// Builds an engine with an explicit launch mode.
    pub fn with_mode(
        netlist: &'a Netlist,
        active_clock: ClockId,
        mode: LaunchMode,
        backtrack_limit: u32,
    ) -> Self {
        let sim = LogicSim::new(netlist);
        let lv = sim.levelization();
        let mut depth = vec![0u32; netlist.num_nets()];
        for &g in lv.order() {
            depth[netlist.gate(g).output.index()] = lv.level(g) + 1;
        }
        let observed: Vec<NetId> = netlist
            .flops()
            .iter()
            .filter(|f| f.clock == active_clock)
            .map(|f| f.d)
            .collect();
        let mut observed_mask = vec![false; netlist.num_nets()];
        for n in &observed {
            observed_mask[n.index()] = true;
        }
        // Upstream map for launch-off-shift backtracing.
        let mut by_chain: std::collections::HashMap<u16, Vec<(u32, u32)>> =
            std::collections::HashMap::new();
        for (i, f) in netlist.flops().iter().enumerate() {
            if let Some(role) = f.scan {
                by_chain
                    .entry(role.chain)
                    .or_default()
                    .push((role.position, i as u32));
            }
        }
        let mut upstream = vec![None; netlist.num_flops()];
        for chain in by_chain.values_mut() {
            chain.sort_unstable();
            for w in chain.windows(2) {
                upstream[w[1].1 as usize] = Some(w[0].1);
            }
        }
        Podem {
            sim,
            active_clock,
            mode,
            backtrack_limit,
            upstream,
            depth,
            observed,
            observed_mask,
        }
    }

    /// The active clock domain.
    pub fn active_clock(&self) -> ClockId {
        self.active_clock
    }

    /// Tries to extend `pattern` (in place) so it detects `fault`.
    ///
    /// Existing care bits in `pattern` are treated as hard constraints —
    /// this is what makes greedy dynamic compaction possible. On
    /// `Untestable` / `Aborted`, the pattern is restored to its input
    /// state.
    pub fn generate(&self, fault: TransitionFault, pattern: &mut TestPattern) -> PodemOutcome {
        let checkpoint = pattern.clone();
        let outcome = self.search(fault, pattern);
        if outcome != PodemOutcome::Test {
            *pattern = checkpoint;
        }
        outcome
    }

    fn search(&self, fault: TransitionFault, pattern: &mut TestPattern) -> PodemOutcome {
        let netlist = self.sim.netlist();
        let v_init = Logic::from_bool(fault.polarity.initial_value());
        let v_final = Logic::from_bool(fault.polarity.final_value());
        let site_net = fault.site.net(netlist);
        let injection = Injection {
            site: fault.site,
            value: v_init,
        };
        // Decision stack: (var, value currently tried, flipped already?).
        let mut stack: Vec<(Var, Logic, bool)> = Vec::new();
        let mut backtracks = 0u32;
        let mut state = self.simulate(pattern, injection);
        let trace = std::env::var_os("PODEM_TRACE").is_some();
        loop {
            match self.objective(&state, fault, site_net, v_init, v_final) {
                Objective::Detected => return PodemOutcome::Test,
                Objective::Assign(net, value, frame) => {
                    if trace {
                        eprintln!(
                            "objective: {net:?}={value} in {frame:?} (stack {} bt {backtracks})",
                            stack.len()
                        );
                    }
                    match self.backtrace(&state, net, value, frame) {
                        Some((var, val)) => {
                            if trace {
                                eprintln!("  decide {var:?} = {val}");
                            }
                            self.set_var(pattern, var, val);
                            stack.push((var, val, false));
                            state = self.simulate(pattern, injection);
                        }
                        None => {
                            if trace {
                                eprintln!("  backtrace failed -> conflict");
                            }
                            // No unassigned input reaches the objective —
                            // treat as a conflict.
                            if !self.backtrack(pattern, &mut stack) {
                                return PodemOutcome::Untestable;
                            }
                            backtracks += 1;
                            if backtracks >= self.backtrack_limit {
                                return PodemOutcome::Aborted;
                            }
                            state = self.simulate(pattern, injection);
                        }
                    }
                }
                Objective::Conflict => {
                    if trace {
                        eprintln!("conflict (stack {} bt {backtracks})", stack.len());
                    }
                    if !self.backtrack(pattern, &mut stack) {
                        return PodemOutcome::Untestable;
                    }
                    backtracks += 1;
                    if backtracks >= self.backtrack_limit {
                        return PodemOutcome::Aborted;
                    }
                    state = self.simulate(pattern, injection);
                }
            }
        }
    }

    fn simulate(&self, pattern: &TestPattern, injection: Injection) -> SimState {
        let netlist = self.sim.netlist();
        let frame1 = self.sim.eval(&pattern.load, &pattern.pi, None);
        let state2 = match self.mode {
            LaunchMode::Capture => {
                loc::next_state_masked(netlist, &pattern.load, &frame1, self.active_clock)
            }
            LaunchMode::Shift => loc::shift_state(netlist, &pattern.load, Logic::Zero),
        };
        let good2 = self.sim.eval(&state2, &pattern.pi, None);
        let faulty2 = self.sim.eval(&state2, &pattern.pi, Some(injection));
        SimState {
            frame1,
            good2,
            faulty2,
        }
    }

    fn set_var(&self, pattern: &mut TestPattern, var: Var, value: Logic) {
        match var {
            Var::Load(i) => pattern.load[i as usize] = value,
            Var::Pi(i) => pattern.pi[i as usize] = value,
        }
    }

    /// Flips the most recent unflipped decision; pops flipped ones.
    /// Returns `false` when the stack empties (search exhausted).
    fn backtrack(&self, pattern: &mut TestPattern, stack: &mut Vec<(Var, Logic, bool)>) -> bool {
        while let Some((var, val, flipped)) = stack.pop() {
            if flipped {
                self.set_var(pattern, var, Logic::X);
            } else {
                let nv = !val;
                self.set_var(pattern, var, nv);
                stack.push((var, nv, true));
                return true;
            }
        }
        false
    }

    fn objective(
        &self,
        state: &SimState,
        fault: TransitionFault,
        site_net: NetId,
        v_init: Logic,
        v_final: Logic,
    ) -> Objective {
        // 1. Launch in frame 1.
        let s1 = state.frame1[site_net.index()];
        if s1 == Logic::X {
            return Objective::Assign(site_net, v_init, Frame::One);
        }
        if s1 != v_init {
            return Objective::Conflict;
        }
        // 2. Excitation in frame 2 (good machine reaches the final value).
        let s2 = state.good2[site_net.index()];
        if s2 == Logic::X {
            return Objective::Assign(site_net, v_final, Frame::Two);
        }
        if s2 != v_final {
            return Objective::Conflict;
        }
        // 3. Detection at an observed capture flop?
        for &obs in &self.observed {
            let g = state.good2[obs.index()];
            let f = state.faulty2[obs.index()];
            if g.is_known() && f.is_known() && g != f {
                return Objective::Detected;
            }
        }
        // 4. Drive the D-frontier.
        let netlist = self.sim.netlist();
        let mut best: Option<(u32, NetId, Logic)> = None;
        let mut frontier_nets: Vec<NetId> = Vec::new();
        // For a branch (pin) fault, the injected gate is on the frontier
        // whenever its output is undetermined: its input *nets* carry no
        // good/faulty difference — the difference is born inside the gate
        // — so the generic scan below would never see it.
        if let FaultSite::Pin { gate, pin } = fault.site {
            let g = netlist.gate(gate);
            let out = g.output.index();
            let undetermined = !(state.good2[out].is_known() && state.faulty2[out].is_known());
            if undetermined {
                if let Some((p, val)) = self.side_objective(state, gate, pin as usize) {
                    frontier_nets.push(g.output);
                    best = Some((self.depth[g.inputs[p].index()], g.inputs[p], val));
                }
            }
        }
        for (gi, gate) in netlist.gates().iter().enumerate() {
            let out = gate.output.index();
            let out_diff_known = state.good2[out].is_known() && state.faulty2[out].is_known();
            if out_diff_known && state.good2[out] == state.faulty2[out] {
                continue; // settled, no difference at output
            }
            if out_diff_known {
                continue; // difference already propagated past this gate
            }
            // Output X in some plane: is a difference arriving?
            let mut has_diff_input = false;
            for &inp in &gate.inputs {
                let g = state.good2[inp.index()];
                let f = state.faulty2[inp.index()];
                if g.is_known() && f.is_known() && g != f {
                    has_diff_input = true;
                    break;
                }
            }
            if !has_diff_input {
                continue;
            }
            // Pick an X side input and its non-controlling value.
            if let Some((pin, val)) = self.propagation_objective(state, GateId::new(gi as u32)) {
                frontier_nets.push(gate.output);
                let d = self.depth[gate.inputs[pin].index()];
                let key = d; // prefer shallow side inputs
                if best.is_none_or(|(bk, _, _)| key < bk) {
                    best = Some((key, gate.inputs[pin], val));
                }
            }
        }
        // X-path check: some frontier output must still reach an observed
        // capture point through not-yet-blocked (X) nets, otherwise the
        // current assignments can never detect the fault.
        if best.is_some() && !self.x_path_exists(state, &frontier_nets) {
            return Objective::Conflict;
        }
        match best {
            Some((_, net, val)) => Objective::Assign(net, val, Frame::Two),
            None => Objective::Conflict,
        }
    }

    /// Forward reachability from the D-frontier through X-valued nets to
    /// any observation point (the classic PODEM X-path check).
    fn x_path_exists(&self, state: &SimState, frontier_nets: &[NetId]) -> bool {
        let netlist = self.sim.netlist();
        let mut seen = vec![false; netlist.num_nets()];
        let mut stack: Vec<NetId> = frontier_nets.to_vec();
        while let Some(net) = stack.pop() {
            let i = net.index();
            if std::mem::replace(&mut seen[i], true) {
                continue;
            }
            if self.observed_mask[i] {
                return true;
            }
            for &g in netlist.fanout_gates(net) {
                let out = netlist.gate(g).output;
                let o = out.index();
                // Follow only nets whose value is still undecided in at
                // least one plane (a known-equal output blocks the path).
                let blocked = state.good2[o].is_known()
                    && state.faulty2[o].is_known()
                    && state.good2[o] == state.faulty2[o];
                if !blocked && !seen[o] {
                    stack.push(out);
                }
            }
        }
        false
    }

    /// For a D-frontier gate, returns `(pin index, value)` of an
    /// unassigned side input to set non-controlling.
    fn propagation_objective(&self, state: &SimState, g: GateId) -> Option<(usize, Logic)> {
        let netlist = self.sim.netlist();
        let gate = netlist.gate(g);
        let diff_pin = gate.inputs.iter().position(|inp| {
            let gv = state.good2[inp.index()];
            let fv = state.faulty2[inp.index()];
            gv.is_known() && fv.is_known() && gv != fv
        })?;
        self.side_objective(state, g, diff_pin)
    }

    /// Side-input objective for a frontier gate whose difference arrives
    /// on `diff_pin`: pick an X side input and its non-controlling value.
    fn side_objective(
        &self,
        state: &SimState,
        g: GateId,
        diff_pin: usize,
    ) -> Option<(usize, Logic)> {
        let netlist = self.sim.netlist();
        let gate = netlist.gate(g);
        let x_pins: Vec<usize> = gate
            .inputs
            .iter()
            .enumerate()
            .filter(|&(i, inp)| {
                i != diff_pin
                    && (state.good2[inp.index()] == Logic::X
                        || state.faulty2[inp.index()] == Logic::X)
            })
            .map(|(i, _)| i)
            .collect();
        if x_pins.is_empty() {
            return None;
        }
        let pin = x_pins[0];
        let value = match gate.kind {
            CellKind::Buf | CellKind::Inv => return None, // single input, no side
            CellKind::And2 | CellKind::And3 | CellKind::Nand2 | CellKind::Nand3 => Logic::One,
            CellKind::Or2 | CellKind::Or3 | CellKind::Nor2 | CellKind::Nor3 => Logic::Zero,
            CellKind::Xor2 | CellKind::Xnor2 => Logic::Zero,
            CellKind::Mux2 => {
                // Route the differing data input through the select
                // (sel = 0 routes input a, sel = 1 routes input b); any
                // other X pin takes the heuristic 0.
                if diff_pin == 2 && pin == 0 {
                    Logic::One
                } else {
                    Logic::Zero
                }
            }
            CellKind::Aoi22 | CellKind::Oai22 => {
                // Partner within the same product must be non-controlling
                // (1 for AOI's AND pair, 0 for OAI's OR pair); the other
                // product must be fully non-controlling (0 / 1).
                let same_product = (pin / 2) == (diff_pin / 2);
                match (gate.kind, same_product) {
                    (CellKind::Aoi22, true) => Logic::One,
                    (CellKind::Aoi22, false) => Logic::Zero,
                    (CellKind::Oai22, true) => Logic::Zero,
                    (CellKind::Oai22, false) => Logic::One,
                    _ => unreachable!(),
                }
            }
        };
        Some((pin, value))
    }

    /// Maps an objective `(net = value in frame)` back to an unassigned
    /// decision variable and a value for it.
    fn backtrace(
        &self,
        state: &SimState,
        mut net: NetId,
        mut value: Logic,
        mut frame: Frame,
    ) -> Option<(Var, Logic)> {
        let netlist = self.sim.netlist();
        // Bounded walk; each step descends through the driving gate.
        for _ in 0..4 * netlist.num_nets().max(16) {
            match netlist.net(net).source {
                Some(NetSource::PrimaryInput) => {
                    let idx = netlist
                        .primary_inputs()
                        .iter()
                        .position(|&p| p == net)
                        .expect("PI net is registered") as u32;
                    return Some((Var::Pi(idx), value));
                }
                Some(NetSource::Const(_)) => return None,
                Some(NetSource::Flop(f)) => match frame {
                    Frame::One => return Some((Var::Load(f.raw()), value)),
                    Frame::Two => match self.mode {
                        LaunchMode::Capture => {
                            let flop = netlist.flop(f);
                            if flop.clock == self.active_clock {
                                net = flop.d;
                                frame = Frame::One;
                            } else {
                                return Some((Var::Load(f.raw()), value));
                            }
                        }
                        LaunchMode::Shift => {
                            // Frame-2 state came from the upstream scan
                            // cell's load; chain heads hold the constant
                            // scan-in (would never be X here).
                            match self.upstream[f.index()] {
                                Some(up) => return Some((Var::Load(up), value)),
                                None => return None,
                            }
                        }
                    },
                },
                Some(NetSource::Gate(g)) => {
                    let plane = match frame {
                        Frame::One => &state.frame1,
                        Frame::Two => &state.good2,
                    };
                    let (next, nval) = self.choose_input(plane, g, value)?;
                    net = next;
                    value = nval;
                }
                None => return None,
            }
        }
        None
    }

    /// Chooses which X input of `g` to pursue to justify `out = value`,
    /// returning the input net and its target value.
    fn choose_input(&self, plane: &[Logic], g: GateId, value: Logic) -> Option<(NetId, Logic)> {
        let netlist = self.sim.netlist();
        let gate = netlist.gate(g);
        let x_inputs: Vec<NetId> = gate
            .inputs
            .iter()
            .copied()
            .filter(|inp| plane[inp.index()] == Logic::X)
            .collect();
        if x_inputs.is_empty() {
            return None;
        }
        let easiest = |nets: &[NetId]| {
            nets.iter()
                .copied()
                .min_by_key(|n| self.depth[n.index()])
                .expect("non-empty")
        };
        let hardest = |nets: &[NetId]| {
            nets.iter()
                .copied()
                .max_by_key(|n| self.depth[n.index()])
                .expect("non-empty")
        };
        let v = value;
        Some(match gate.kind {
            CellKind::Buf => (x_inputs[0], v),
            CellKind::Inv => (x_inputs[0], !v),
            CellKind::And2 | CellKind::And3 => match v {
                Logic::One => (hardest(&x_inputs), Logic::One),
                _ => (easiest(&x_inputs), Logic::Zero),
            },
            CellKind::Nand2 | CellKind::Nand3 => match v {
                Logic::Zero => (hardest(&x_inputs), Logic::One),
                _ => (easiest(&x_inputs), Logic::Zero),
            },
            CellKind::Or2 | CellKind::Or3 => match v {
                Logic::Zero => (hardest(&x_inputs), Logic::Zero),
                _ => (easiest(&x_inputs), Logic::One),
            },
            CellKind::Nor2 | CellKind::Nor3 => match v {
                Logic::One => (hardest(&x_inputs), Logic::Zero),
                _ => (easiest(&x_inputs), Logic::One),
            },
            CellKind::Xor2 | CellKind::Xnor2 => {
                let chosen = easiest(&x_inputs);
                let other = gate
                    .inputs
                    .iter()
                    .copied()
                    .find(|&n| n != chosen)
                    .unwrap_or(chosen);
                let other_v = plane[other.index()].to_bool().unwrap_or(false);
                let want = match gate.kind {
                    CellKind::Xor2 => v ^ Logic::from_bool(other_v),
                    _ => !(v ^ Logic::from_bool(other_v)),
                };
                (chosen, want)
            }
            CellKind::Mux2 => {
                // Every branch below must return an X net, or backtrace
                // would wander into a determined cone and report a false
                // conflict (breaking PODEM's completeness).
                let sel = gate.inputs[0];
                let a = gate.inputs[1];
                let c = gate.inputs[2];
                match plane[sel.index()] {
                    Logic::Zero => (a, v),
                    Logic::One => (c, v),
                    Logic::X => {
                        // Prefer steering the select toward a data input
                        // that already equals the target.
                        if plane[a.index()] == v {
                            (sel, Logic::Zero)
                        } else if plane[c.index()] == v {
                            (sel, Logic::One)
                        } else if plane[a.index()] == Logic::X {
                            (a, v)
                        } else if plane[c.index()] == Logic::X {
                            (c, v)
                        } else {
                            // Both data inputs known and wrong: decide the
                            // select; the conflict will surface upstream.
                            (sel, Logic::Zero)
                        }
                    }
                }
            }
            CellKind::Aoi22 | CellKind::Oai22 => {
                // Heuristic: to raise an AOI output, drive an X input of a
                // not-yet-0 product to 0; to lower it, drive an X input to
                // 1 (dually for OAI).
                let inverting_low = match gate.kind {
                    CellKind::Aoi22 => Logic::Zero,
                    _ => Logic::One,
                };
                let target = if v == Logic::One {
                    inverting_low
                } else {
                    !inverting_low
                };
                (easiest(&x_inputs), target)
            }
        })
    }
}

enum Objective {
    Detected,
    Assign(NetId, Logic, Frame),
    Conflict,
}

#[cfg(test)]
mod tests {
    use super::*;
    use scap_dft::{FillPolicy, PatternBatch};
    use scap_netlist::{ClockEdge, NetlistBuilder};
    use scap_sim::{FaultList, Polarity, TransitionFaultSim};

    /// Small but non-trivial: 4 flops, AND/XOR logic, one observation.
    fn mini() -> Netlist {
        let mut b = NetlistBuilder::new("m");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 100e6);
        let mut q = Vec::new();
        let mut d = Vec::new();
        for i in 0..4 {
            q.push(b.add_net(format!("q{i}")));
            d.push(b.add_net(format!("d{i}")));
        }
        let w1 = b.add_net("w1");
        let w2 = b.add_net("w2");
        b.add_gate(CellKind::And2, &[q[0], q[1]], w1, blk).unwrap();
        b.add_gate(CellKind::Xor2, &[w1, q[2]], w2, blk).unwrap();
        b.add_gate(CellKind::Inv, &[w2], d[0], blk).unwrap();
        b.add_gate(CellKind::Buf, &[q[0]], d[1], blk).unwrap();
        b.add_gate(CellKind::Nor2, &[q[2], q[3]], d[2], blk)
            .unwrap();
        b.add_gate(CellKind::Nand2, &[w2, q[3]], d[3], blk).unwrap();
        for i in 0..4 {
            b.add_flop(format!("ff{i}"), d[i], q[i], clk, ClockEdge::Rising, blk)
                .unwrap();
        }
        b.finish().unwrap()
    }

    /// Every test PODEM claims must be confirmed by the independent fault
    /// simulator.
    #[test]
    fn podem_tests_are_confirmed_by_fault_simulation() {
        let n = mini();
        let podem = Podem::new(&n, ClockId::new(0), 200);
        let fsim = TransitionFaultSim::new(&n, ClockId::new(0));
        let faults = FaultList::full(&n);
        let mut rng = rand::rngs::mock::StepRng::new(0, 0x9E3779B97F4A7C15);
        let mut found = 0;
        for &fault in faults.faults() {
            let mut pattern = TestPattern::unspecified(&n);
            if podem.generate(fault, &mut pattern) == PodemOutcome::Test {
                found += 1;
                let filled = pattern.fill(&n, FillPolicy::Zero, &mut rng);
                let batch = PatternBatch::pack(std::slice::from_ref(&filled));
                let summary = fsim.detect_batch(&batch.load_words, &batch.pi_words, 1, &[fault]);
                assert_eq!(
                    summary.detect_mask[0] & 1,
                    1,
                    "PODEM test for {fault:?} not confirmed by fault sim: {pattern:?}"
                );
            }
        }
        assert!(
            found >= faults.faults().len() / 2,
            "PODEM found only {found}/{}",
            faults.faults().len()
        );
    }

    #[test]
    fn untestable_fault_is_classified() {
        // q1's only fanout is a gate feeding d1... build a truly untestable
        // case: a net whose both polarities can't launch because the flop
        // reloads itself with its own value (d = q): no transition possible.
        let mut b = NetlistBuilder::new("u");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 100e6);
        let q = b.add_net("q");
        let d = b.add_net("d");
        let q2 = b.add_net("q2");
        b.add_gate(CellKind::Buf, &[q], d, blk).unwrap();
        b.add_flop("ff", d, q, clk, ClockEdge::Rising, blk).unwrap();
        b.add_flop("ff2", d, q2, clk, ClockEdge::Rising, blk)
            .unwrap();
        let n = b.finish().unwrap();
        let podem = Podem::new(&n, ClockId::new(0), 1000);
        // STR on q: frame1 q = 0 requires load 0; frame2 q = next state =
        // buf(q) = 0 -> can never be 1. Untestable.
        let fault = TransitionFault::new(FaultSite::Net(NetId::new(0)), Polarity::SlowToRise);
        let mut pattern = TestPattern::unspecified(&n);
        assert_eq!(
            podem.generate(fault, &mut pattern),
            PodemOutcome::Untestable
        );
        // Pattern unchanged on failure.
        assert_eq!(pattern, TestPattern::unspecified(&n));
    }

    #[test]
    fn secondary_targeting_respects_existing_assignments() {
        let n = mini();
        let podem = Podem::new(&n, ClockId::new(0), 200);
        let faults = FaultList::full(&n);
        // Find two faults that can share a pattern.
        let mut pattern = TestPattern::unspecified(&n);
        let mut merged = 0;
        for &fault in faults.faults() {
            let before = pattern.clone();
            match podem.generate(fault, &mut pattern) {
                PodemOutcome::Test => {
                    merged += 1;
                    // All previously specified bits must be unchanged.
                    for (a, b) in before.load.iter().zip(&pattern.load) {
                        if a.is_known() {
                            assert_eq!(a, b, "constraint violated");
                        }
                    }
                    if merged == 3 {
                        break;
                    }
                }
                _ => {
                    assert_eq!(pattern, before, "failed run must restore");
                }
            }
        }
        assert!(merged >= 2, "compaction should merge at least two faults");
    }
}
