//! The two-time-frame PODEM engine.
//!
//! Decision variables are the scan-load bits (pseudo-primary inputs) and
//! the held primary inputs. After every decision the engine updates both
//! frames three-valued — frame 1 plain, frame 2 as a good/faulty plane
//! pair with the fault site stuck at its pre-transition value — and
//! derives the next objective:
//!
//! 1. launch: frame-1 site value = initial value,
//! 2. excitation: frame-2 good site value = final value,
//! 3. propagation: drive a D-frontier gate's side inputs non-controlling
//!    until the good/faulty difference reaches an observed capture flop.
//!
//! The planes live in a [`PodemScratch`] and are maintained
//! *incrementally*: each decision changes one input bit (a backtrack, a
//! handful), so instead of three full levelized passes the engine diffs
//! the inputs against the cached planes and event-propagates only the
//! affected fanout through a [`LevelQueue`]. The faulty plane is never
//! simulated whole-netlist at all: outside the fault site's output cone
//! it is identical to the good plane by construction, so it is kept as a
//! cone overlay and rebuilt in one O(cone) topological sweep per
//! decision.

use scap_dft::TestPattern;
use scap_netlist::{CellKind, ClockId, GateId, Logic, NetId, NetSource, Netlist};
use scap_sim::{loc, FaultSite, LaunchMode, LevelQueue, LogicSim, TransitionFault};

/// Outcome of one PODEM run.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum PodemOutcome {
    /// A test was found; the pattern has been extended in place.
    Test,
    /// No test exists (search space exhausted without hitting the
    /// backtrack limit). Under a constrained (secondary) run this only
    /// means "untestable given the existing assignments".
    Untestable,
    /// The backtrack limit was hit first.
    Aborted,
}

/// Which time frame an objective lives in.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Frame {
    One,
    Two,
}

/// A decision variable: a scan-load bit or a primary input.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Var {
    Load(u32),
    Pi(u32),
}

/// Where a flop's frame-2 (launch) state comes from, precomputed per
/// launch mode so the incremental resync never re-derives chain order.
#[derive(Clone, Copy, Debug)]
enum State2Src {
    /// Launch-off-capture, active domain: captures frame 1's D value.
    FromD(NetId),
    /// Holds its own scan-load value (inactive domain / unstitched).
    Hold,
    /// Launch-off-shift: takes the upstream scan cell's load.
    LoadOf(u32),
    /// Launch-off-shift chain head: the constant scan-in (0).
    ScanIn,
}

/// Reusable simulation state for [`Podem::generate_with_scratch`].
///
/// Holds the three value planes, the event queue and the fault-cone
/// bookkeeping. A scratch is lazily (re)bound to an engine on first use;
/// binding is keyed on the netlist identity plus clock domain and launch
/// mode, so one scratch must not be shared between two *different live*
/// netlists that happen to alias in memory. Reusing one scratch across
/// all faults of a run amortises the full-netlist evaluations down to
/// one per engine rebind.
#[derive(Debug, Default)]
pub struct PodemScratch {
    /// Frame-1 net values for the currently synced pattern.
    frame1: Vec<Logic>,
    /// Frame-2 good-machine net values.
    good2: Vec<Logic>,
    /// Frame-2 faulty-machine values, valid only on cone-stamped nets;
    /// everywhere else the faulty machine equals `good2`.
    faulty2: Vec<Logic>,
    queue: LevelQueue,
    /// Cone membership stamps (valid where == `cone_epoch`).
    cone_net: Vec<u32>,
    cone_gate: Vec<u32>,
    cone_epoch: u32,
    /// Cone gates in (level, id) topological order, for the faulty-plane
    /// sweep.
    cone_topo: Vec<u32>,
    /// Cone gates in ascending id order, for the D-frontier scan (same
    /// visit order as a whole-netlist scan restricted to the cone).
    cone_by_id: Vec<u32>,
    /// Observation points inside the cone.
    cone_observed: Vec<NetId>,
    /// The fault site the cone structures describe.
    cone_site: Option<FaultSite>,
    /// X-path visited stamps (valid where == `xepoch`).
    xstamp: Vec<u32>,
    xepoch: u32,
    xstack: Vec<u32>,
    work: Vec<u32>,
    /// Identity of the engine the planes were built for.
    owner: Option<(usize, usize, u32, LaunchMode)>,
}

impl PodemScratch {
    /// An unbound scratch; sized and initialised on first use.
    pub fn new() -> Self {
        PodemScratch::default()
    }
}

/// The faulty-plane value of net `i`: the overlay inside the cone, the
/// good plane outside it (where the two machines provably agree).
#[inline]
fn fv(s: &PodemScratch, i: usize) -> Logic {
    if s.cone_net[i] == s.cone_epoch {
        s.faulty2[i]
    } else {
        s.good2[i]
    }
}

/// Seeds the fanout gates of `net` into the event queue.
#[inline]
fn seed_fanout(netlist: &Netlist, gate_level: &[u32], queue: &mut LevelQueue, net: NetId) {
    for &g in netlist.fanout_gates(net) {
        queue.push(gate_level[g.index()], g.raw());
    }
}

/// Drains the event queue against one value plane: re-evaluates each
/// scheduled gate and schedules its fanout when the output changed.
/// Levelized order guarantees each gate sees final input values, so the
/// result equals a full levelized pass over the same inputs.
fn drain_events(
    netlist: &Netlist,
    gate_level: &[u32],
    queue: &mut LevelQueue,
    plane: &mut [Logic],
) {
    let mut inbuf = [Logic::X; 4];
    while let Some(gi) = queue.pop() {
        let gate = netlist.gate(GateId::new(gi));
        let n_in = gate.inputs.len();
        for (k, &inp) in gate.inputs.iter().enumerate() {
            inbuf[k] = plane[inp.index()];
        }
        let out = gate.kind.eval(&inbuf[..n_in]);
        let o = gate.output.index();
        if plane[o] != out {
            plane[o] = out;
            seed_fanout(netlist, gate_level, queue, gate.output);
        }
    }
}

/// The PODEM engine, reusable across faults.
#[derive(Debug)]
pub struct Podem<'a> {
    sim: LogicSim<'a>,
    active_clock: ClockId,
    mode: LaunchMode,
    backtrack_limit: u32,
    /// For launch-off-shift: the upstream scan cell feeding each flop at
    /// the launch shift (`None` at chain heads / unstitched flops).
    upstream: Vec<Option<u32>>,
    /// Structural depth per net (level of driving gate + 1), backtrace
    /// heuristic.
    depth: Vec<u32>,
    /// Level per gate, for event scheduling.
    gate_level: Vec<u32>,
    /// Number of distinct gate levels.
    num_levels: u32,
    /// Observation points: D nets of active-domain flops.
    observed: Vec<NetId>,
    /// Same, as a per-net mask for the X-path check.
    observed_mask: Vec<bool>,
    /// Per net: can it structurally reach an observation point? Faults
    /// whose effect net cannot are untestable without any search.
    observable: Vec<bool>,
    /// Frame-2 state source per flop.
    state2_src: Vec<State2Src>,
}

impl<'a> Podem<'a> {
    /// Builds a launch-off-capture engine for one netlist and clock
    /// domain.
    pub fn new(netlist: &'a Netlist, active_clock: ClockId, backtrack_limit: u32) -> Self {
        Self::with_mode(netlist, active_clock, LaunchMode::Capture, backtrack_limit)
    }

    /// Builds an engine with an explicit launch mode.
    pub fn with_mode(
        netlist: &'a Netlist,
        active_clock: ClockId,
        mode: LaunchMode,
        backtrack_limit: u32,
    ) -> Self {
        let sim = LogicSim::new(netlist);
        let lv = sim.levelization();
        let mut depth = vec![0u32; netlist.num_nets()];
        let mut gate_level = vec![0u32; netlist.num_gates()];
        let mut num_levels = 0u32;
        for &g in lv.order() {
            let l = lv.level(g);
            depth[netlist.gate(g).output.index()] = l + 1;
            gate_level[g.index()] = l;
            num_levels = num_levels.max(l + 1);
        }
        let observed: Vec<NetId> = netlist
            .flops()
            .iter()
            .filter(|f| f.clock == active_clock)
            .map(|f| f.d)
            .collect();
        let mut observed_mask = vec![false; netlist.num_nets()];
        for n in &observed {
            observed_mask[n.index()] = true;
        }
        // Backward reachability from the observation points: a fault
        // whose effect net is outside this set can never produce a
        // good/faulty difference at a capture flop.
        let mut observable = observed_mask.clone();
        let mut work: Vec<u32> = observed.iter().map(|n| n.raw()).collect();
        while let Some(ni) = work.pop() {
            if let Some(NetSource::Gate(g)) = netlist.net(NetId::new(ni)).source {
                for &inp in &netlist.gate(g).inputs {
                    if !observable[inp.index()] {
                        observable[inp.index()] = true;
                        work.push(inp.raw());
                    }
                }
            }
        }
        // Upstream map for launch-off-shift backtracing.
        let mut by_chain: std::collections::HashMap<u16, Vec<(u32, u32)>> =
            std::collections::HashMap::new();
        for (i, f) in netlist.flops().iter().enumerate() {
            if let Some(role) = f.scan {
                by_chain
                    .entry(role.chain)
                    .or_default()
                    .push((role.position, i as u32));
            }
        }
        let mut upstream = vec![None; netlist.num_flops()];
        for chain in by_chain.values_mut() {
            chain.sort_unstable();
            for w in chain.windows(2) {
                upstream[w[1].1 as usize] = Some(w[0].1);
            }
        }
        let state2_src: Vec<State2Src> = netlist
            .flops()
            .iter()
            .enumerate()
            .map(|(i, f)| match mode {
                LaunchMode::Capture => {
                    if f.clock == active_clock {
                        State2Src::FromD(f.d)
                    } else {
                        State2Src::Hold
                    }
                }
                LaunchMode::Shift => {
                    if f.scan.is_some() {
                        match upstream[i] {
                            Some(up) => State2Src::LoadOf(up),
                            None => State2Src::ScanIn,
                        }
                    } else {
                        State2Src::Hold
                    }
                }
            })
            .collect();
        Podem {
            sim,
            active_clock,
            mode,
            backtrack_limit,
            upstream,
            depth,
            gate_level,
            num_levels,
            observed,
            observed_mask,
            observable,
            state2_src,
        }
    }

    /// The active clock domain.
    pub fn active_clock(&self) -> ClockId {
        self.active_clock
    }

    /// The net where the fault's effect appears (the net itself for a
    /// stem fault, the reading gate's output for a branch fault).
    fn effect_net(&self, fault: TransitionFault) -> usize {
        match fault.site {
            FaultSite::Net(n) => n.index(),
            FaultSite::Pin { gate, .. } => self.sim.netlist().gate(gate).output.index(),
        }
    }

    /// Tries to extend `pattern` (in place) so it detects `fault`, using
    /// a throwaway scratch. Prefer [`Podem::generate_with_scratch`] in
    /// loops.
    pub fn generate(&self, fault: TransitionFault, pattern: &mut TestPattern) -> PodemOutcome {
        let mut scratch = PodemScratch::default();
        self.generate_with_scratch(fault, pattern, &mut scratch)
    }

    /// Tries to extend `pattern` (in place) so it detects `fault`.
    ///
    /// Existing care bits in `pattern` are treated as hard constraints —
    /// this is what makes greedy dynamic compaction possible. On
    /// `Untestable` / `Aborted`, the pattern is restored to its input
    /// state. The scratch carries the simulated planes from call to
    /// call; any engine may use any scratch (it rebinds itself), but
    /// reuse with the *same* engine is what makes the resync cheap.
    pub fn generate_with_scratch(
        &self,
        fault: TransitionFault,
        pattern: &mut TestPattern,
        scratch: &mut PodemScratch,
    ) -> PodemOutcome {
        if !self.observable[self.effect_net(fault)] {
            // No structural path from the fault effect to a capture
            // point: the faulty plane can never differ at an observed
            // net, so the search below could only ever exhaust or
            // abort. Classify it without simulating anything.
            return PodemOutcome::Untestable;
        }
        let checkpoint = pattern.clone();
        let outcome = self.search(fault, pattern, scratch);
        if outcome != PodemOutcome::Test {
            *pattern = checkpoint;
        }
        outcome
    }

    fn owner_token(&self) -> (usize, usize, u32, LaunchMode) {
        let netlist = self.sim.netlist();
        (
            netlist as *const Netlist as usize,
            netlist.num_nets(),
            self.active_clock.raw(),
            self.mode,
        )
    }

    /// Full (re)initialisation of the scratch planes from `pattern`.
    fn rebuild(&self, pattern: &TestPattern, s: &mut PodemScratch) {
        let netlist = self.sim.netlist();
        s.frame1 = self.sim.eval(&pattern.load, &pattern.pi, None);
        let state2 = match self.mode {
            LaunchMode::Capture => {
                loc::next_state_masked(netlist, &pattern.load, &s.frame1, self.active_clock)
            }
            LaunchMode::Shift => loc::shift_state(netlist, &pattern.load, Logic::Zero),
        };
        s.good2 = self.sim.eval(&state2, &pattern.pi, None);
        s.faulty2.clear();
        s.faulty2.resize(netlist.num_nets(), Logic::X);
        s.queue
            .ensure(self.num_levels as usize, netlist.num_gates());
        s.cone_net.clear();
        s.cone_net.resize(netlist.num_nets(), 0);
        s.cone_gate.clear();
        s.cone_gate.resize(netlist.num_gates(), 0);
        s.cone_epoch = 0;
        s.cone_site = None;
        s.xstamp.clear();
        s.xstamp.resize(netlist.num_nets(), 0);
        s.xepoch = 0;
        s.owner = Some(self.owner_token());
    }

    /// Event-driven resync of `frame1` / `good2` after input bits
    /// changed. The planes themselves are the cache: flop-Q and PI nets
    /// hold exactly the input values they were last synced with, so
    /// diffing the pattern against them finds every change (decisions
    /// set one bit; backtracks restore a few to X).
    fn sync(&self, pattern: &TestPattern, s: &mut PodemScratch) {
        let netlist = self.sim.netlist();
        s.queue.begin();
        for (i, f) in netlist.flops().iter().enumerate() {
            let v = pattern.load[i];
            let q = f.q.index();
            if s.frame1[q] != v {
                s.frame1[q] = v;
                seed_fanout(netlist, &self.gate_level, &mut s.queue, f.q);
            }
        }
        for (i, &p) in netlist.primary_inputs().iter().enumerate() {
            let v = pattern.pi[i];
            if s.frame1[p.index()] != v {
                s.frame1[p.index()] = v;
                seed_fanout(netlist, &self.gate_level, &mut s.queue, p);
            }
        }
        drain_events(netlist, &self.gate_level, &mut s.queue, &mut s.frame1);
        // Frame 2: recompute each flop's launch state (cheap, O(flops))
        // and diff it against the good plane's Q value; primary inputs
        // are held across both frames.
        s.queue.begin();
        for (i, f) in netlist.flops().iter().enumerate() {
            let nv = match self.state2_src[i] {
                State2Src::FromD(d) => s.frame1[d.index()],
                State2Src::Hold => pattern.load[i],
                State2Src::LoadOf(j) => pattern.load[j as usize],
                State2Src::ScanIn => Logic::Zero,
            };
            let q = f.q.index();
            if s.good2[q] != nv {
                s.good2[q] = nv;
                seed_fanout(netlist, &self.gate_level, &mut s.queue, f.q);
            }
        }
        for (i, &p) in netlist.primary_inputs().iter().enumerate() {
            let v = pattern.pi[i];
            if s.good2[p.index()] != v {
                s.good2[p.index()] = v;
                seed_fanout(netlist, &self.gate_level, &mut s.queue, p);
            }
        }
        drain_events(netlist, &self.gate_level, &mut s.queue, &mut s.good2);
    }

    /// Marks the output cone of `site` and builds the cone gate orders
    /// and in-cone observation list. Only cone nets can ever carry a
    /// good/faulty difference, so every downstream consumer (faulty
    /// sweep, D-frontier scan, detection check, X-path) is restricted to
    /// these structures.
    fn set_cone(&self, site: FaultSite, s: &mut PodemScratch) {
        let netlist = self.sim.netlist();
        if s.cone_epoch == u32::MAX {
            s.cone_net.fill(0);
            s.cone_gate.fill(0);
            s.cone_epoch = 1;
        } else {
            s.cone_epoch += 1;
        }
        let epoch = s.cone_epoch;
        s.cone_topo.clear();
        s.work.clear();
        match site {
            FaultSite::Net(n) => {
                s.cone_net[n.index()] = epoch;
                s.work.push(n.raw());
            }
            FaultSite::Pin { gate, .. } => {
                // The reading gate itself is the cone root: the
                // difference is born inside it.
                s.cone_gate[gate.index()] = epoch;
                s.cone_topo.push(gate.raw());
                let out = netlist.gate(gate).output;
                s.cone_net[out.index()] = epoch;
                s.work.push(out.raw());
            }
        }
        while let Some(ni) = s.work.pop() {
            for &g in netlist.fanout_gates(NetId::new(ni)) {
                if s.cone_gate[g.index()] != epoch {
                    s.cone_gate[g.index()] = epoch;
                    s.cone_topo.push(g.raw());
                    let out = netlist.gate(g).output;
                    if s.cone_net[out.index()] != epoch {
                        s.cone_net[out.index()] = epoch;
                        s.work.push(out.raw());
                    }
                }
            }
        }
        s.cone_topo
            .sort_unstable_by_key(|&g| (self.gate_level[g as usize], g));
        s.cone_by_id.clear();
        s.cone_by_id.extend_from_slice(&s.cone_topo);
        s.cone_by_id.sort_unstable();
        s.cone_observed.clear();
        for &o in &self.observed {
            if s.cone_net[o.index()] == epoch {
                s.cone_observed.push(o);
            }
        }
        s.cone_site = Some(site);
    }

    /// Rebuilds the faulty-plane overlay in one topological sweep over
    /// the cone. Equivalent to a full faulty-machine evaluation because
    /// outside the cone the faulty machine equals `good2` (which `fv`
    /// reads through to), and inside it every net is rewritten here.
    fn rebuild_faulty(&self, fault: TransitionFault, v_init: Logic, s: &mut PodemScratch) {
        let netlist = self.sim.netlist();
        let epoch = s.cone_epoch;
        if let FaultSite::Net(n) = fault.site {
            // The stem fault forces the net itself; its driver is never
            // in the cone (no combinational cycles), so nothing below
            // overwrites it.
            s.faulty2[n.index()] = v_init;
        }
        let injected = match fault.site {
            FaultSite::Pin { gate, pin } => Some((gate, pin as usize)),
            FaultSite::Net(_) => None,
        };
        let topo = std::mem::take(&mut s.cone_topo);
        let mut inbuf = [Logic::X; 4];
        for &gi in &topo {
            let g = GateId::new(gi);
            let gate = netlist.gate(g);
            let n_in = gate.inputs.len();
            for (k, &inp) in gate.inputs.iter().enumerate() {
                let i = inp.index();
                let mut v = if s.cone_net[i] == epoch {
                    s.faulty2[i]
                } else {
                    s.good2[i]
                };
                if injected == Some((g, k)) {
                    v = v_init;
                }
                inbuf[k] = v;
            }
            s.faulty2[gate.output.index()] = gate.kind.eval(&inbuf[..n_in]);
        }
        s.cone_topo = topo;
    }

    fn search(
        &self,
        fault: TransitionFault,
        pattern: &mut TestPattern,
        s: &mut PodemScratch,
    ) -> PodemOutcome {
        let netlist = self.sim.netlist();
        let v_init = Logic::from_bool(fault.polarity.initial_value());
        let v_final = Logic::from_bool(fault.polarity.final_value());
        let site_net = fault.site.net(netlist);
        if s.owner != Some(self.owner_token()) {
            self.rebuild(pattern, s);
        } else {
            self.sync(pattern, s);
        }
        if s.cone_site != Some(fault.site) {
            self.set_cone(fault.site, s);
        }
        self.rebuild_faulty(fault, v_init, s);
        // Decision stack: (var, value currently tried, flipped already?).
        let mut stack: Vec<(Var, Logic, bool)> = Vec::new();
        let mut backtracks = 0u32;
        let trace = std::env::var_os("PODEM_TRACE").is_some();
        loop {
            match self.objective(s, fault, site_net, v_init, v_final) {
                Objective::Detected => return PodemOutcome::Test,
                Objective::Assign(net, value, frame) => {
                    if trace {
                        eprintln!(
                            "objective: {net:?}={value} in {frame:?} (stack {} bt {backtracks})",
                            stack.len()
                        );
                    }
                    match self.backtrace(s, net, value, frame) {
                        Some((var, val)) => {
                            if trace {
                                eprintln!("  decide {var:?} = {val}");
                            }
                            self.set_var(pattern, var, val);
                            stack.push((var, val, false));
                            self.resim(fault, v_init, pattern, s);
                        }
                        None => {
                            if trace {
                                eprintln!("  backtrace failed -> conflict");
                            }
                            // No unassigned input reaches the objective —
                            // treat as a conflict.
                            if !self.backtrack(pattern, &mut stack) {
                                return PodemOutcome::Untestable;
                            }
                            backtracks += 1;
                            if backtracks >= self.backtrack_limit {
                                return PodemOutcome::Aborted;
                            }
                            self.resim(fault, v_init, pattern, s);
                        }
                    }
                }
                Objective::Conflict => {
                    if trace {
                        eprintln!("conflict (stack {} bt {backtracks})", stack.len());
                    }
                    if !self.backtrack(pattern, &mut stack) {
                        return PodemOutcome::Untestable;
                    }
                    backtracks += 1;
                    if backtracks >= self.backtrack_limit {
                        return PodemOutcome::Aborted;
                    }
                    self.resim(fault, v_init, pattern, s);
                }
            }
        }
    }

    /// One decision step's worth of re-simulation: resync the good
    /// planes from the pattern, then resweep the faulty cone.
    fn resim(
        &self,
        fault: TransitionFault,
        v_init: Logic,
        pattern: &TestPattern,
        s: &mut PodemScratch,
    ) {
        self.sync(pattern, s);
        self.rebuild_faulty(fault, v_init, s);
    }

    fn set_var(&self, pattern: &mut TestPattern, var: Var, value: Logic) {
        match var {
            Var::Load(i) => pattern.load[i as usize] = value,
            Var::Pi(i) => pattern.pi[i as usize] = value,
        }
    }

    /// Flips the most recent unflipped decision; pops flipped ones.
    /// Returns `false` when the stack empties (search exhausted).
    fn backtrack(&self, pattern: &mut TestPattern, stack: &mut Vec<(Var, Logic, bool)>) -> bool {
        while let Some((var, val, flipped)) = stack.pop() {
            if flipped {
                self.set_var(pattern, var, Logic::X);
            } else {
                let nv = !val;
                self.set_var(pattern, var, nv);
                stack.push((var, nv, true));
                return true;
            }
        }
        false
    }

    fn objective(
        &self,
        s: &mut PodemScratch,
        fault: TransitionFault,
        site_net: NetId,
        v_init: Logic,
        v_final: Logic,
    ) -> Objective {
        // 1. Launch in frame 1.
        let s1 = s.frame1[site_net.index()];
        if s1 == Logic::X {
            return Objective::Assign(site_net, v_init, Frame::One);
        }
        if s1 != v_init {
            return Objective::Conflict;
        }
        // 2. Excitation in frame 2 (good machine reaches the final value).
        let s2 = s.good2[site_net.index()];
        if s2 == Logic::X {
            return Objective::Assign(site_net, v_final, Frame::Two);
        }
        if s2 != v_final {
            return Objective::Conflict;
        }
        // 3. Detection at an observed capture flop? Only in-cone
        // observation points can differ.
        for &obs in &s.cone_observed {
            let g = s.good2[obs.index()];
            let f = s.faulty2[obs.index()];
            if g.is_known() && f.is_known() && g != f {
                return Objective::Detected;
            }
        }
        // 4. Drive the D-frontier. Gates outside the cone see identical
        // good/faulty input values, so scanning the cone's gates in
        // ascending id order visits exactly the candidates a full scan
        // would, in the same order.
        let netlist = self.sim.netlist();
        let mut best: Option<(u32, NetId, Logic)> = None;
        let mut frontier_nets: Vec<NetId> = Vec::new();
        // For a branch (pin) fault, the injected gate is on the frontier
        // whenever its output is undetermined: its input *nets* carry no
        // good/faulty difference — the difference is born inside the gate
        // — so the generic scan below would never see it.
        if let FaultSite::Pin { gate, pin } = fault.site {
            let g = netlist.gate(gate);
            let out = g.output.index();
            let undetermined = !(s.good2[out].is_known() && s.faulty2[out].is_known());
            if undetermined {
                if let Some((p, val)) = self.side_objective(s, gate, pin as usize) {
                    frontier_nets.push(g.output);
                    best = Some((self.depth[g.inputs[p].index()], g.inputs[p], val));
                }
            }
        }
        for &gi in &s.cone_by_id {
            let gid = GateId::new(gi);
            let gate = netlist.gate(gid);
            let out = gate.output.index();
            let fout = s.faulty2[out];
            let out_diff_known = s.good2[out].is_known() && fout.is_known();
            if out_diff_known {
                // Settled (no difference) or already propagated past.
                continue;
            }
            // Output X in some plane: is a difference arriving?
            let mut has_diff_input = false;
            for &inp in &gate.inputs {
                let g = s.good2[inp.index()];
                let f = fv(s, inp.index());
                if g.is_known() && f.is_known() && g != f {
                    has_diff_input = true;
                    break;
                }
            }
            if !has_diff_input {
                continue;
            }
            // Pick an X side input and its non-controlling value.
            if let Some((pin, val)) = self.propagation_objective(s, gid) {
                frontier_nets.push(gate.output);
                let d = self.depth[gate.inputs[pin].index()];
                let key = d; // prefer shallow side inputs
                if best.is_none_or(|(bk, _, _)| key < bk) {
                    best = Some((key, gate.inputs[pin], val));
                }
            }
        }
        // X-path check: some frontier output must still reach an observed
        // capture point through not-yet-blocked (X) nets, otherwise the
        // current assignments can never detect the fault.
        if best.is_some() && !self.x_path_exists(s, &frontier_nets) {
            return Objective::Conflict;
        }
        match best {
            Some((_, net, val)) => Objective::Assign(net, val, Frame::Two),
            None => Objective::Conflict,
        }
    }

    /// Forward reachability from the D-frontier through X-valued nets to
    /// any observation point (the classic PODEM X-path check).
    fn x_path_exists(&self, s: &mut PodemScratch, frontier_nets: &[NetId]) -> bool {
        let netlist = self.sim.netlist();
        if s.xepoch == u32::MAX {
            s.xstamp.fill(0);
            s.xepoch = 1;
        } else {
            s.xepoch += 1;
        }
        let epoch = s.xepoch;
        s.xstack.clear();
        for n in frontier_nets {
            s.xstack.push(n.raw());
        }
        while let Some(ni) = s.xstack.pop() {
            let i = ni as usize;
            if s.xstamp[i] == epoch {
                continue;
            }
            s.xstamp[i] = epoch;
            if self.observed_mask[i] {
                return true;
            }
            for &g in netlist.fanout_gates(NetId::new(ni)) {
                let out = netlist.gate(g).output;
                let o = out.index();
                // Follow only nets whose value is still undecided in at
                // least one plane (a known-equal output blocks the path).
                let gv = s.good2[o];
                let fvv = fv(s, o);
                let blocked = gv.is_known() && fvv.is_known() && gv == fvv;
                if !blocked && s.xstamp[o] != epoch {
                    s.xstack.push(out.raw());
                }
            }
        }
        false
    }

    /// For a D-frontier gate, returns `(pin index, value)` of an
    /// unassigned side input to set non-controlling.
    fn propagation_objective(&self, s: &PodemScratch, g: GateId) -> Option<(usize, Logic)> {
        let netlist = self.sim.netlist();
        let gate = netlist.gate(g);
        let diff_pin = gate.inputs.iter().position(|inp| {
            let gv = s.good2[inp.index()];
            let fvv = fv(s, inp.index());
            gv.is_known() && fvv.is_known() && gv != fvv
        })?;
        self.side_objective(s, g, diff_pin)
    }

    /// Side-input objective for a frontier gate whose difference arrives
    /// on `diff_pin`: pick an X side input and its non-controlling value.
    fn side_objective(
        &self,
        s: &PodemScratch,
        g: GateId,
        diff_pin: usize,
    ) -> Option<(usize, Logic)> {
        let netlist = self.sim.netlist();
        let gate = netlist.gate(g);
        let x_pins: Vec<usize> = gate
            .inputs
            .iter()
            .enumerate()
            .filter(|&(i, inp)| {
                i != diff_pin
                    && (s.good2[inp.index()] == Logic::X || fv(s, inp.index()) == Logic::X)
            })
            .map(|(i, _)| i)
            .collect();
        if x_pins.is_empty() {
            return None;
        }
        let pin = x_pins[0];
        let value = match gate.kind {
            CellKind::Buf | CellKind::Inv => return None, // single input, no side
            CellKind::And2 | CellKind::And3 | CellKind::Nand2 | CellKind::Nand3 => Logic::One,
            CellKind::Or2 | CellKind::Or3 | CellKind::Nor2 | CellKind::Nor3 => Logic::Zero,
            CellKind::Xor2 | CellKind::Xnor2 => Logic::Zero,
            CellKind::Mux2 => {
                // Route the differing data input through the select
                // (sel = 0 routes input a, sel = 1 routes input b); any
                // other X pin takes the heuristic 0.
                if diff_pin == 2 && pin == 0 {
                    Logic::One
                } else {
                    Logic::Zero
                }
            }
            CellKind::Aoi22 | CellKind::Oai22 => {
                // Partner within the same product must be non-controlling
                // (1 for AOI's AND pair, 0 for OAI's OR pair); the other
                // product must be fully non-controlling (0 / 1).
                let same_product = (pin / 2) == (diff_pin / 2);
                match (gate.kind, same_product) {
                    (CellKind::Aoi22, true) => Logic::One,
                    (CellKind::Aoi22, false) => Logic::Zero,
                    (CellKind::Oai22, true) => Logic::Zero,
                    (CellKind::Oai22, false) => Logic::One,
                    _ => unreachable!(),
                }
            }
        };
        Some((pin, value))
    }

    /// Maps an objective `(net = value in frame)` back to an unassigned
    /// decision variable and a value for it.
    fn backtrace(
        &self,
        s: &PodemScratch,
        mut net: NetId,
        mut value: Logic,
        mut frame: Frame,
    ) -> Option<(Var, Logic)> {
        let netlist = self.sim.netlist();
        // Bounded walk; each step descends through the driving gate.
        for _ in 0..4 * netlist.num_nets().max(16) {
            match netlist.net(net).source {
                Some(NetSource::PrimaryInput) => {
                    let idx = netlist
                        .primary_inputs()
                        .iter()
                        .position(|&p| p == net)
                        .expect("PI net is registered") as u32;
                    return Some((Var::Pi(idx), value));
                }
                Some(NetSource::Const(_)) => return None,
                Some(NetSource::Flop(f)) => match frame {
                    Frame::One => return Some((Var::Load(f.raw()), value)),
                    Frame::Two => match self.mode {
                        LaunchMode::Capture => {
                            let flop = netlist.flop(f);
                            if flop.clock == self.active_clock {
                                net = flop.d;
                                frame = Frame::One;
                            } else {
                                return Some((Var::Load(f.raw()), value));
                            }
                        }
                        LaunchMode::Shift => {
                            // Frame-2 state came from the upstream scan
                            // cell's load; chain heads hold the constant
                            // scan-in (would never be X here).
                            match self.upstream[f.index()] {
                                Some(up) => return Some((Var::Load(up), value)),
                                None => return None,
                            }
                        }
                    },
                },
                Some(NetSource::Gate(g)) => {
                    let plane = match frame {
                        Frame::One => &s.frame1,
                        Frame::Two => &s.good2,
                    };
                    let (next, nval) = self.choose_input(plane, g, value)?;
                    net = next;
                    value = nval;
                }
                None => return None,
            }
        }
        None
    }

    /// Chooses which X input of `g` to pursue to justify `out = value`,
    /// returning the input net and its target value.
    fn choose_input(&self, plane: &[Logic], g: GateId, value: Logic) -> Option<(NetId, Logic)> {
        let netlist = self.sim.netlist();
        let gate = netlist.gate(g);
        let x_inputs: Vec<NetId> = gate
            .inputs
            .iter()
            .copied()
            .filter(|inp| plane[inp.index()] == Logic::X)
            .collect();
        if x_inputs.is_empty() {
            return None;
        }
        let easiest = |nets: &[NetId]| {
            nets.iter()
                .copied()
                .min_by_key(|n| self.depth[n.index()])
                .expect("non-empty")
        };
        let hardest = |nets: &[NetId]| {
            nets.iter()
                .copied()
                .max_by_key(|n| self.depth[n.index()])
                .expect("non-empty")
        };
        let v = value;
        Some(match gate.kind {
            CellKind::Buf => (x_inputs[0], v),
            CellKind::Inv => (x_inputs[0], !v),
            CellKind::And2 | CellKind::And3 => match v {
                Logic::One => (hardest(&x_inputs), Logic::One),
                _ => (easiest(&x_inputs), Logic::Zero),
            },
            CellKind::Nand2 | CellKind::Nand3 => match v {
                Logic::Zero => (hardest(&x_inputs), Logic::One),
                _ => (easiest(&x_inputs), Logic::Zero),
            },
            CellKind::Or2 | CellKind::Or3 => match v {
                Logic::Zero => (hardest(&x_inputs), Logic::Zero),
                _ => (easiest(&x_inputs), Logic::One),
            },
            CellKind::Nor2 | CellKind::Nor3 => match v {
                Logic::One => (hardest(&x_inputs), Logic::Zero),
                _ => (easiest(&x_inputs), Logic::One),
            },
            CellKind::Xor2 | CellKind::Xnor2 => {
                let chosen = easiest(&x_inputs);
                let other = gate
                    .inputs
                    .iter()
                    .copied()
                    .find(|&n| n != chosen)
                    .unwrap_or(chosen);
                let other_v = plane[other.index()].to_bool().unwrap_or(false);
                let want = match gate.kind {
                    CellKind::Xor2 => v ^ Logic::from_bool(other_v),
                    _ => !(v ^ Logic::from_bool(other_v)),
                };
                (chosen, want)
            }
            CellKind::Mux2 => {
                // Every branch below must return an X net, or backtrace
                // would wander into a determined cone and report a false
                // conflict (breaking PODEM's completeness).
                let sel = gate.inputs[0];
                let a = gate.inputs[1];
                let c = gate.inputs[2];
                match plane[sel.index()] {
                    Logic::Zero => (a, v),
                    Logic::One => (c, v),
                    Logic::X => {
                        // Prefer steering the select toward a data input
                        // that already equals the target.
                        if plane[a.index()] == v {
                            (sel, Logic::Zero)
                        } else if plane[c.index()] == v {
                            (sel, Logic::One)
                        } else if plane[a.index()] == Logic::X {
                            (a, v)
                        } else if plane[c.index()] == Logic::X {
                            (c, v)
                        } else {
                            // Both data inputs known and wrong: decide the
                            // select; the conflict will surface upstream.
                            (sel, Logic::Zero)
                        }
                    }
                }
            }
            CellKind::Aoi22 | CellKind::Oai22 => {
                // Heuristic: to raise an AOI output, drive an X input of a
                // not-yet-0 product to 0; to lower it, drive an X input to
                // 1 (dually for OAI).
                let inverting_low = match gate.kind {
                    CellKind::Aoi22 => Logic::Zero,
                    _ => Logic::One,
                };
                let target = if v == Logic::One {
                    inverting_low
                } else {
                    !inverting_low
                };
                (easiest(&x_inputs), target)
            }
        })
    }
}

enum Objective {
    Detected,
    Assign(NetId, Logic, Frame),
    Conflict,
}

#[cfg(test)]
mod tests {
    use super::*;
    use scap_dft::{FillPolicy, PatternBatch};
    use scap_netlist::{ClockEdge, NetlistBuilder};
    use scap_sim::{FaultList, Polarity, TransitionFaultSim};

    /// Small but non-trivial: 4 flops, AND/XOR logic, one observation.
    fn mini() -> Netlist {
        let mut b = NetlistBuilder::new("m");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 100e6);
        let mut q = Vec::new();
        let mut d = Vec::new();
        for i in 0..4 {
            q.push(b.add_net(format!("q{i}")));
            d.push(b.add_net(format!("d{i}")));
        }
        let w1 = b.add_net("w1");
        let w2 = b.add_net("w2");
        b.add_gate(CellKind::And2, &[q[0], q[1]], w1, blk).unwrap();
        b.add_gate(CellKind::Xor2, &[w1, q[2]], w2, blk).unwrap();
        b.add_gate(CellKind::Inv, &[w2], d[0], blk).unwrap();
        b.add_gate(CellKind::Buf, &[q[0]], d[1], blk).unwrap();
        b.add_gate(CellKind::Nor2, &[q[2], q[3]], d[2], blk)
            .unwrap();
        b.add_gate(CellKind::Nand2, &[w2, q[3]], d[3], blk).unwrap();
        for i in 0..4 {
            b.add_flop(format!("ff{i}"), d[i], q[i], clk, ClockEdge::Rising, blk)
                .unwrap();
        }
        b.finish().unwrap()
    }

    /// Every test PODEM claims must be confirmed by the independent fault
    /// simulator.
    #[test]
    fn podem_tests_are_confirmed_by_fault_simulation() {
        let n = mini();
        let podem = Podem::new(&n, ClockId::new(0), 200);
        let fsim = TransitionFaultSim::new(&n, ClockId::new(0));
        let faults = FaultList::full(&n);
        let mut rng = rand::rngs::mock::StepRng::new(0, 0x9E3779B97F4A7C15);
        let mut found = 0;
        for &fault in faults.faults() {
            let mut pattern = TestPattern::unspecified(&n);
            if podem.generate(fault, &mut pattern) == PodemOutcome::Test {
                found += 1;
                let filled = pattern.fill(&n, FillPolicy::Zero, &mut rng);
                let batch = PatternBatch::pack(std::slice::from_ref(&filled));
                let summary = fsim.detect_batch(&batch.load_words, &batch.pi_words, 1, &[fault]);
                assert_eq!(
                    summary.detect_mask[0] & 1,
                    1,
                    "PODEM test for {fault:?} not confirmed by fault sim: {pattern:?}"
                );
            }
        }
        assert!(
            found >= faults.faults().len() / 2,
            "PODEM found only {found}/{}",
            faults.faults().len()
        );
    }

    /// A scratch carried across faults must behave exactly like a fresh
    /// scratch per fault: same outcomes, same pattern stream.
    #[test]
    fn shared_scratch_matches_fresh_scratch() {
        let n = mini();
        let podem = Podem::new(&n, ClockId::new(0), 200);
        let faults = FaultList::full(&n);
        let mut shared = PodemScratch::new();
        let mut pat_fresh = TestPattern::unspecified(&n);
        let mut pat_shared = TestPattern::unspecified(&n);
        for &fault in faults.faults() {
            let fresh = podem.generate(fault, &mut pat_fresh);
            let reused = podem.generate_with_scratch(fault, &mut pat_shared, &mut shared);
            assert_eq!(fresh, reused, "outcome diverged on {fault:?}");
            assert_eq!(pat_fresh, pat_shared, "pattern diverged on {fault:?}");
        }
    }

    #[test]
    fn untestable_fault_is_classified() {
        // q1's only fanout is a gate feeding d1... build a truly untestable
        // case: a net whose both polarities can't launch because the flop
        // reloads itself with its own value (d = q): no transition possible.
        let mut b = NetlistBuilder::new("u");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 100e6);
        let q = b.add_net("q");
        let d = b.add_net("d");
        let q2 = b.add_net("q2");
        b.add_gate(CellKind::Buf, &[q], d, blk).unwrap();
        b.add_flop("ff", d, q, clk, ClockEdge::Rising, blk).unwrap();
        b.add_flop("ff2", d, q2, clk, ClockEdge::Rising, blk)
            .unwrap();
        let n = b.finish().unwrap();
        let podem = Podem::new(&n, ClockId::new(0), 1000);
        // STR on q: frame1 q = 0 requires load 0; frame2 q = next state =
        // buf(q) = 0 -> can never be 1. Untestable.
        let fault = TransitionFault::new(FaultSite::Net(NetId::new(0)), Polarity::SlowToRise);
        let mut pattern = TestPattern::unspecified(&n);
        assert_eq!(
            podem.generate(fault, &mut pattern),
            PodemOutcome::Untestable
        );
        // Pattern unchanged on failure.
        assert_eq!(pattern, TestPattern::unspecified(&n));
    }

    #[test]
    fn unobservable_fault_is_rejected_without_search() {
        // w feeds nothing observable: its only reader drives a net with
        // no flop behind it.
        let mut b = NetlistBuilder::new("o");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 100e6);
        let a = b.add_primary_input("a");
        let q = b.add_net("q");
        let d = b.add_net("d");
        let dead = b.add_net("dead");
        b.add_gate(CellKind::Inv, &[q], d, blk).unwrap();
        b.add_gate(CellKind::Inv, &[a], dead, blk).unwrap();
        b.add_primary_output(dead);
        b.add_flop("ff", d, q, clk, ClockEdge::Rising, blk).unwrap();
        let n = b.finish().unwrap();
        let podem = Podem::new(&n, ClockId::new(0), 1000);
        // `dead` never reaches a capture flop (primary outputs are not
        // observed in this flow), so the fault is untestable a priori.
        let fault = TransitionFault::new(FaultSite::Net(dead), Polarity::SlowToFall);
        let mut pattern = TestPattern::unspecified(&n);
        assert_eq!(
            podem.generate(fault, &mut pattern),
            PodemOutcome::Untestable
        );
        assert_eq!(pattern, TestPattern::unspecified(&n));
    }

    #[test]
    fn secondary_targeting_respects_existing_assignments() {
        let n = mini();
        let podem = Podem::new(&n, ClockId::new(0), 200);
        let faults = FaultList::full(&n);
        // Find two faults that can share a pattern.
        let mut pattern = TestPattern::unspecified(&n);
        let mut merged = 0;
        for &fault in faults.faults() {
            let before = pattern.clone();
            match podem.generate(fault, &mut pattern) {
                PodemOutcome::Test => {
                    merged += 1;
                    // All previously specified bits must be unchanged.
                    for (a, b) in before.load.iter().zip(&pattern.load) {
                        if a.is_known() {
                            assert_eq!(a, b, "constraint violated");
                        }
                    }
                    if merged == 3 {
                        break;
                    }
                }
                _ => {
                    assert_eq!(pattern, before, "failed run must restore");
                }
            }
        }
        assert!(merged >= 2, "compaction should merge at least two faults");
    }
}
