//! The pattern-generation loop: primary targeting, greedy dynamic
//! compaction, fill and PPSFP fault dropping.

use crate::{Podem, PodemOutcome, PodemScratch, SatAtpg, SatOutcome};
use rand::rngs::StdRng;
use rand::SeedableRng;
use scap_dft::{FillPolicy, PatternBatch, PatternSet, TestPattern};
use scap_exec::{shard_ranges, Executor};
use scap_netlist::{ClockId, Netlist};
use scap_sim::{FaultList, LaunchMode, PropagationScratch, TransitionFault, TransitionFaultSim};
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Which search engine targets primary faults, and whether aborted
/// searches get a SAT second opinion.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub enum EngineKind {
    /// Structural PODEM only — the default; aborts stay aborts.
    #[default]
    Podem,
    /// SAT primary targeting ([`SatAtpg`]); dynamic compaction of
    /// secondary faults still runs PODEM (it merges incrementally into
    /// a partially-specified pattern, which is PODEM's home turf).
    Sat,
    /// PODEM first; only faults PODEM *aborts* on go to SAT, which
    /// either finds the test or proves them untestable. This is the
    /// coverage-accounting fix: an abort is not evidence either way,
    /// and leaving aborted faults in the test-coverage denominator
    /// silently deflates the reported number.
    Hybrid,
}

impl EngineKind {
    /// Parses a CLI/HTTP value (`podem`, `sat`, `hybrid`).
    pub fn parse(s: &str) -> Option<EngineKind> {
        match s {
            "podem" => Some(EngineKind::Podem),
            "sat" => Some(EngineKind::Sat),
            "hybrid" => Some(EngineKind::Hybrid),
            _ => None,
        }
    }

    /// The canonical spelling `parse` accepts.
    pub fn label(self) -> &'static str {
        match self {
            EngineKind::Podem => "podem",
            EngineKind::Sat => "sat",
            EngineKind::Hybrid => "hybrid",
        }
    }
}

/// ATPG knobs.
#[derive(Clone, Copy, Debug, PartialEq, Serialize, Deserialize)]
pub struct AtpgConfig {
    /// Don't-care fill policy applied to every closed pattern.
    pub fill: FillPolicy,
    /// Launch mechanism (the paper uses launch-off-capture).
    pub mode: LaunchMode,
    /// Primary-targeting engine (see [`EngineKind`]).
    pub engine: EngineKind,
    /// PODEM backtrack limit per fault.
    pub backtrack_limit: u32,
    /// CDCL conflict budget per SAT solve (`sat`/`hybrid` engines).
    pub sat_conflict_limit: u64,
    /// Consecutive failed secondary-merge attempts before a pattern is
    /// closed (the greedy compaction cut-off).
    pub secondary_fail_limit: u32,
    /// Hard cap on secondary targets examined per pattern.
    pub secondary_scan_window: usize,
    /// RNG seed (random fill).
    pub seed: u64,
    /// Safety cap on generated patterns.
    pub max_patterns: usize,
}

impl Default for AtpgConfig {
    fn default() -> Self {
        AtpgConfig {
            fill: FillPolicy::Random,
            mode: LaunchMode::Capture,
            engine: EngineKind::Podem,
            backtrack_limit: 100,
            sat_conflict_limit: 20_000,
            secondary_fail_limit: 8,
            secondary_scan_window: 2000,
            seed: 0xC0FFEE,
            max_patterns: 100_000,
        }
    }
}

/// Classification of each fault after a run.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum FaultStatus {
    /// Not yet detected.
    Undetected,
    /// Detected (by a targeted test or fortuitously during fault
    /// simulation).
    Detected,
    /// Proven untestable by exhausting the search space.
    Untestable,
    /// Search hit the backtrack limit.
    Aborted,
}

/// The result of one ATPG run.
#[derive(Clone, Debug, Serialize, Deserialize)]
pub struct AtpgRun {
    /// Generated patterns, in generation order.
    pub patterns: PatternSet,
    /// Final status per fault (parallel to the input fault list).
    pub status: Vec<FaultStatus>,
    /// `(pattern count, cumulative detected faults)` after each pattern —
    /// the paper's Figure 4 coverage curve.
    pub coverage_curve: Vec<(usize, usize)>,
    /// Size of the uncollapsed fault universe (for Table 1 style totals).
    pub uncollapsed_total: usize,
}

impl AtpgRun {
    /// Detected fault count.
    pub fn num_detected(&self) -> usize {
        self.status
            .iter()
            .filter(|s| matches!(s, FaultStatus::Detected))
            .count()
    }

    /// Untestable fault count.
    pub fn num_untestable(&self) -> usize {
        self.status
            .iter()
            .filter(|s| matches!(s, FaultStatus::Untestable))
            .count()
    }

    /// Aborted fault count.
    pub fn num_aborted(&self) -> usize {
        self.status
            .iter()
            .filter(|s| matches!(s, FaultStatus::Aborted))
            .count()
    }

    /// Undetected fault count (excludes aborted faults, which have
    /// their own bucket).
    pub fn num_undetected(&self) -> usize {
        self.status
            .iter()
            .filter(|s| matches!(s, FaultStatus::Undetected))
            .count()
    }

    /// Test coverage: `detected / (total − untestable)`, the figure
    /// commercial tools report.
    ///
    /// Only *proven* untestable faults leave the denominator. Aborted
    /// faults stay in it — an abort is not evidence of untestability —
    /// which is exactly why the hybrid engine's UNSAT reclassification
    /// raises this number: every abort it proves untestable moves from
    /// the denominator's dead weight into the `Untestable` bucket.
    pub fn test_coverage(&self) -> f64 {
        let total = self.status.len();
        let testable = total - self.num_untestable();
        if testable == 0 {
            return 0.0;
        }
        self.num_detected() as f64 / testable as f64
    }

    /// Fault coverage: `detected / total`, over every fault in the
    /// list — untestable and aborted faults included.
    pub fn fault_coverage(&self) -> f64 {
        if self.status.is_empty() {
            return 0.0;
        }
        self.num_detected() as f64 / self.status.len() as f64
    }

    /// Merges another run's patterns and statuses (for the staged
    /// procedure: run per block group, then concatenate). Both runs must
    /// be over the same fault list length or disjoint lists — the caller
    /// tracks which; this helper simply concatenates patterns and keeps
    /// its own statuses.
    pub fn append_patterns(&mut self, other: AtpgRun) {
        let offset = self.patterns.len();
        self.patterns.extend(other.patterns);
        self.coverage_curve.extend(
            other
                .coverage_curve
                .into_iter()
                .map(|(p, d)| (p + offset, d)),
        );
    }
}

/// Drives [`Podem`] (and optionally [`SatAtpg`]) over a fault list.
#[derive(Debug)]
pub struct Generator<'a> {
    netlist: &'a Netlist,
    podem: Podem<'a>,
    /// Built only when the configured engine needs it, so the default
    /// PODEM path carries no extra state and stays byte-identical.
    sat: Option<SatAtpg<'a>>,
    fault_sim: TransitionFaultSim<'a>,
    config: AtpgConfig,
    exec: Executor,
}

impl<'a> Generator<'a> {
    /// Builds a generator for one clock domain.
    pub fn new(netlist: &'a Netlist, active_clock: ClockId, config: AtpgConfig) -> Self {
        let sat = (config.engine != EngineKind::Podem).then(|| {
            SatAtpg::new(
                netlist,
                active_clock,
                config.mode,
                config.sat_conflict_limit,
            )
        });
        Generator {
            netlist,
            podem: Podem::with_mode(netlist, active_clock, config.mode, config.backtrack_limit),
            sat,
            fault_sim: TransitionFaultSim::with_mode(netlist, active_clock, config.mode),
            config,
            exec: Executor::new(),
        }
    }

    /// The configuration in use.
    pub fn config(&self) -> &AtpgConfig {
        &self.config
    }

    /// Runs ATPG to completion over `faults`.
    pub fn run(&self, faults: &FaultList) -> AtpgRun {
        self.run_with_status(faults, vec![FaultStatus::Undetected; faults.faults().len()])
    }

    /// Runs ATPG continuing from a prior status vector (used by the staged
    /// procedure to avoid re-targeting already-covered faults).
    pub fn run_with_status(&self, faults: &FaultList, status: Vec<FaultStatus>) -> AtpgRun {
        let order: Vec<usize> = (0..faults.faults().len()).collect();
        self.run_with_status_in_order(faults, status, &order)
    }

    /// Runs ATPG targeting faults in an explicit order — e.g. the STA
    /// risk-tier priority that puts faults on near-critical (derated)
    /// paths first, so the budgeted pattern count covers the paths supply
    /// noise actually threatens. `order` must hold in-range fault indices,
    /// each at most once; faults absent from it are never targeted as
    /// primaries (drop-simulation can still detect them). With the
    /// identity order this is exactly [`Generator::run_with_status`].
    pub fn run_with_status_in_order(
        &self,
        faults: &FaultList,
        mut status: Vec<FaultStatus>,
        order: &[usize],
    ) -> AtpgRun {
        assert_eq!(status.len(), faults.faults().len());
        assert!(
            order.iter().all(|&i| i < status.len()),
            "fault order index out of range"
        );
        let mut rng = StdRng::seed_from_u64(self.config.seed);
        let mut patterns = PatternSet {
            fill: Some(self.config.fill),
            ..PatternSet::new()
        };
        let mut coverage_curve = Vec::new();
        let mut detected_total = status
            .iter()
            .filter(|s| matches!(s, FaultStatus::Detected))
            .count();
        let list = faults.faults();
        // Drop-sim works on equivalence-class representatives: a
        // representative's detect mask answers for every class member,
        // so statuses evolve exactly as with per-fault simulation.
        let collapse = faults.collapse(self.netlist);
        let rep = collapse.rep();
        // One propagation scratch per worker for the whole run; workers
        // claim distinct slots per round, so buffers stay warm across
        // patterns instead of being reallocated
        // (the scratch is epoch-stamped — reuse cannot leak state).
        let scratch_pool: Vec<Mutex<PropagationScratch>> = (0..self.exec.threads().max(1))
            .map(|_| Mutex::new(PropagationScratch::default()))
            .collect();
        let next_scratch = AtomicUsize::new(0);
        // One simulation scratch for every PODEM call in the run: the
        // engine resyncs it incrementally instead of re-simulating the
        // whole netlist three times per decision.
        let mut podem_scratch = PodemScratch::default();
        let mut rep_targets: Vec<TransitionFault> = Vec::new();
        let mut rep_ids: Vec<u32> = Vec::new();
        let mut slot_of: Vec<u32> = vec![u32::MAX; list.len()];
        // Secondary-merge abort counter per fault. The backtrack budget
        // is constant within a run, so two aborts at it are two aborts
        // "at the same budget": further merge attempts are suppressed
        // (they burn the full budget and nearly always abort again).
        let mut secondary_aborts: Vec<u8> = vec![0; list.len()];
        const SECONDARY_ABORT_CAP: u8 = 2;
        for (pos, &idx) in order.iter().enumerate() {
            if patterns.len() >= self.config.max_patterns {
                break;
            }
            if status[idx] != FaultStatus::Undetected {
                continue;
            }
            let mut pattern = TestPattern::unspecified(self.netlist);
            let primary = match self.config.engine {
                EngineKind::Podem | EngineKind::Hybrid => {
                    let _span = scap_obs::span!("atpg.podem_primary");
                    self.podem
                        .generate_with_scratch(list[idx], &mut pattern, &mut podem_scratch)
                }
                EngineKind::Sat => {
                    let sat = self.sat.as_ref().expect("sat engine built for engine=sat");
                    match sat.generate(list[idx], &mut pattern) {
                        SatOutcome::Test => PodemOutcome::Test,
                        SatOutcome::Untestable => PodemOutcome::Untestable,
                        SatOutcome::Unknown => PodemOutcome::Aborted,
                    }
                }
            };
            match primary {
                PodemOutcome::Untestable => {
                    status[idx] = FaultStatus::Untestable;
                    continue;
                }
                PodemOutcome::Aborted => {
                    if self.config.engine == EngineKind::Hybrid {
                        // A PODEM abort proves nothing. Ask the SAT
                        // engine for a verdict: UNSAT is a proof of
                        // untestability (the fault leaves the coverage
                        // denominator), a model is a test PODEM missed.
                        let sat = self.sat.as_ref().expect("sat engine built for hybrid");
                        match sat.generate(list[idx], &mut pattern) {
                            SatOutcome::Test => {
                                scap_obs::counter!("atpg.sat_rescued_tests").incr();
                            }
                            SatOutcome::Untestable => {
                                scap_obs::counter!("atpg.reclassified_untestable").incr();
                                status[idx] = FaultStatus::Untestable;
                                continue;
                            }
                            SatOutcome::Unknown => {
                                status[idx] = FaultStatus::Aborted;
                                continue;
                            }
                        }
                    } else {
                        status[idx] = FaultStatus::Aborted;
                        continue;
                    }
                }
                PodemOutcome::Test => {}
            }
            // Greedy dynamic compaction: pull further undetected faults
            // into the same pattern until merges keep failing.
            let mut fails = 0u32;
            let mut scanned = 0usize;
            for &jdx in &order[pos + 1..] {
                let f2 = list[jdx];
                if fails >= self.config.secondary_fail_limit
                    || scanned >= self.config.secondary_scan_window
                {
                    break;
                }
                if status[jdx] != FaultStatus::Undetected {
                    continue;
                }
                if secondary_aborts[jdx] >= SECONDARY_ABORT_CAP {
                    // Suppressed: treat the would-be attempt exactly as
                    // an abort (same loop accounting) without paying
                    // the backtrack budget again.
                    scanned += 1;
                    fails += 1;
                    scap_obs::counter!("atpg.aborts_suppressed").incr();
                    continue;
                }
                scanned += 1;
                let _span = scap_obs::span!("atpg.podem_secondary");
                match self
                    .podem
                    .generate_with_scratch(f2, &mut pattern, &mut podem_scratch)
                {
                    PodemOutcome::Test => fails = 0,
                    PodemOutcome::Aborted => {
                        secondary_aborts[jdx] = secondary_aborts[jdx].saturating_add(1);
                        fails += 1;
                    }
                    PodemOutcome::Untestable => fails += 1,
                }
            }
            let filled = pattern.fill(self.netlist, self.config.fill, &mut rng);
            // PPSFP drop: the filled pattern is ground truth for status.
            let batch = PatternBatch::pack(std::slice::from_ref(&filled));
            let _span = scap_obs::span!("atpg.drop_sim");
            rep_ids.clear();
            rep_targets.clear();
            for (i, s) in status.iter().enumerate() {
                if matches!(s, FaultStatus::Detected) {
                    continue;
                }
                let r = rep[i] as usize;
                if slot_of[r] == u32::MAX {
                    slot_of[r] = rep_targets.len() as u32;
                    rep_ids.push(r as u32);
                    rep_targets.push(list[r]);
                }
            }
            let detect_mask = self.drop_sim(&batch, &rep_targets, &scratch_pool, &next_scratch);
            for (i, s) in status.iter_mut().enumerate() {
                if matches!(s, FaultStatus::Detected) {
                    continue;
                }
                if detect_mask[slot_of[rep[i] as usize] as usize] != 0 {
                    *s = FaultStatus::Detected;
                    detected_total += 1;
                }
            }
            for &r in &rep_ids {
                slot_of[r as usize] = u32::MAX;
            }
            patterns.push(pattern, filled);
            coverage_curve.push((patterns.len(), detected_total));
        }
        AtpgRun {
            patterns,
            status,
            coverage_curve,
            uncollapsed_total: faults.uncollapsed_count(),
        }
    }

    /// PPSFP drop simulation of one filled pattern: evaluates the launch
    /// frames once, then fans the target faults across the executor's
    /// workers in contiguous shards. Every fault's detect mask is an
    /// independent function of the frames and lands at the fault's own
    /// slot, so the result is bit-identical at every thread count (a
    /// one-worker executor degenerates to the serial loop).
    fn drop_sim(
        &self,
        batch: &PatternBatch,
        targets: &[TransitionFault],
        scratch_pool: &[Mutex<PropagationScratch>],
        next_scratch: &AtomicUsize,
    ) -> Vec<u64> {
        let frames = self.fault_sim.frames(&batch.load_words, &batch.pi_words);
        scap_obs::counter!("sim.block_evals").incr();
        scap_obs::counter!("sim.patterns_per_block").add(batch.valid_mask.count_ones() as u64);
        let shards = shard_ranges(targets.len(), self.exec.threads());
        let masks: Vec<Vec<u64>> = self.exec.parallel_map_with(
            // Each worker locks a distinct pool slot: at most
            // `scratch_pool.len()` workers run per call, so consecutive
            // claims (mod pool size) never collide within a call.
            || {
                let slot = next_scratch.fetch_add(1, Ordering::Relaxed) % scratch_pool.len();
                scratch_pool[slot].lock().expect("scratch pool poisoned")
            },
            &shards,
            |scratch, range| {
                let mut out = Vec::with_capacity(range.len());
                let mut detections = 0u64;
                let mut skipped = 0u64;
                for &fault in &targets[range.clone()] {
                    let mask = if self.fault_sim.is_observable(fault) {
                        self.fault_sim
                            .detect_one(&frames, batch.valid_mask, fault, scratch)
                    } else {
                        skipped += 1;
                        0
                    };
                    detections += u64::from(mask != 0);
                    out.push(mask);
                }
                scap_obs::counter!("sim.fault_detections").add(detections);
                scap_obs::counter!("sim.faults_skipped_unobservable").add(skipped);
                out
            },
        );
        scap_obs::counter!("sim.fault_sim_batches").incr();
        scap_obs::counter!("sim.fault_sim_checks").add(targets.len() as u64);
        masks.concat()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::Rng;
    use scap_netlist::{CellKind, ClockEdge, NetlistBuilder};

    /// A register ring with mixing logic — everything reachable and
    /// observable, so coverage should be high.
    fn ring(k: usize) -> Netlist {
        let mut rng = StdRng::seed_from_u64(11);
        let mut b = NetlistBuilder::new("ring");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 100e6);
        let qs: Vec<_> = (0..k).map(|i| b.add_net(format!("q{i}"))).collect();
        let mut ds = Vec::new();
        for i in 0..k {
            let a = qs[i];
            let c = qs[(i + 1) % k];
            let w = b.add_net(format!("w{i}"));
            let kind = match rng.gen_range(0..4) {
                0 => CellKind::Nand2,
                1 => CellKind::Nor2,
                2 => CellKind::Xor2,
                _ => CellKind::And2,
            };
            b.add_gate(kind, &[a, c], w, blk).unwrap();
            ds.push(w);
        }
        for i in 0..k {
            b.add_flop(format!("ff{i}"), ds[i], qs[i], clk, ClockEdge::Rising, blk)
                .unwrap();
        }
        b.finish().unwrap()
    }

    #[test]
    fn reaches_high_coverage_on_ring() {
        let n = ring(12);
        let faults = FaultList::full(&n);
        let gen = Generator::new(&n, ClockId::new(0), AtpgConfig::default());
        let run = gen.run(&faults);
        assert!(
            run.test_coverage() > 0.85,
            "coverage {:.3} with {} patterns ({} aborted, {} untestable)",
            run.test_coverage(),
            run.patterns.len(),
            run.num_aborted(),
            run.num_untestable()
        );
        assert!(!run.patterns.is_empty());
    }

    #[test]
    fn coverage_curve_is_monotone() {
        let n = ring(10);
        let faults = FaultList::full(&n);
        let gen = Generator::new(&n, ClockId::new(0), AtpgConfig::default());
        let run = gen.run(&faults);
        let mut prev = 0;
        for &(p, d) in &run.coverage_curve {
            assert!(d >= prev, "curve must be non-decreasing");
            assert!(p >= 1);
            prev = d;
        }
        assert_eq!(prev, run.num_detected());
    }

    #[test]
    fn compaction_yields_fewer_patterns_than_faults() {
        let n = ring(12);
        let faults = FaultList::full(&n);
        let gen = Generator::new(&n, ClockId::new(0), AtpgConfig::default());
        let run = gen.run(&faults);
        assert!(
            run.patterns.len() * 3 < run.num_detected(),
            "{} patterns for {} detections — compaction is not working",
            run.patterns.len(),
            run.num_detected()
        );
    }

    #[test]
    fn fill_zero_produces_mostly_zero_loads() {
        let n = ring(12);
        let faults = FaultList::full(&n);
        let cfg = AtpgConfig {
            fill: FillPolicy::Zero,
            ..AtpgConfig::default()
        };
        let gen = Generator::new(&n, ClockId::new(0), cfg);
        let run = gen.run(&faults);
        let ones: usize = run
            .patterns
            .filled
            .iter()
            .map(|f| f.load.iter().filter(|&&b| b).count())
            .sum();
        let total: usize = run.patterns.filled.iter().map(|f| f.load.len()).sum();
        assert!(
            (ones as f64) < 0.8 * total as f64,
            "fill-0 loads should be biased toward zero ({ones}/{total})"
        );
        // Source patterns keep their X bits for inspection.
        assert_eq!(run.patterns.source.len(), run.patterns.filled.len());
    }

    #[test]
    fn run_with_status_skips_detected_faults() {
        let n = ring(10);
        let faults = FaultList::full(&n);
        let gen = Generator::new(&n, ClockId::new(0), AtpgConfig::default());
        let first = gen.run(&faults);
        // Re-run with everything already detected: no new patterns.
        let second = gen.run_with_status(&faults, first.status.clone());
        let new_patterns = second.patterns.len();
        let still_undetected = first
            .status
            .iter()
            .filter(|s| matches!(s, FaultStatus::Undetected | FaultStatus::Aborted))
            .count();
        assert!(
            new_patterns <= still_undetected.max(1),
            "{new_patterns} new patterns for {still_undetected} leftovers"
        );
    }

    /// Pins the coverage formulas over every [`FaultStatus`]:
    /// test coverage = detected / (total − untestable) — aborted and
    /// undetected faults stay in the denominator — and fault coverage
    /// = detected / total.
    #[test]
    fn coverage_formulas_are_pinned_for_all_statuses() {
        let mk = |status: Vec<FaultStatus>| AtpgRun {
            patterns: PatternSet::new(),
            status,
            coverage_curve: Vec::new(),
            uncollapsed_total: 0,
        };
        let run = mk(vec![
            FaultStatus::Detected,
            FaultStatus::Undetected,
            FaultStatus::Untestable,
            FaultStatus::Aborted,
        ]);
        assert_eq!(run.num_detected(), 1);
        assert_eq!(run.num_undetected(), 1);
        assert_eq!(run.num_untestable(), 1);
        assert_eq!(run.num_aborted(), 1);
        // 1 detected over (4 − 1 untestable) = 3 testable.
        assert_eq!(run.test_coverage(), 1.0 / 3.0);
        assert_eq!(run.fault_coverage(), 1.0 / 4.0);
        // Reclassifying the aborted fault as untestable shrinks the
        // denominator: same detections, higher test coverage.
        let run = mk(vec![
            FaultStatus::Detected,
            FaultStatus::Undetected,
            FaultStatus::Untestable,
            FaultStatus::Untestable,
        ]);
        assert_eq!(run.test_coverage(), 1.0 / 2.0);
        assert_eq!(run.fault_coverage(), 1.0 / 4.0);
        // Degenerate denominators report 0, not NaN.
        assert_eq!(mk(vec![]).test_coverage(), 0.0);
        assert_eq!(mk(vec![]).fault_coverage(), 0.0);
        assert_eq!(mk(vec![FaultStatus::Untestable]).test_coverage(), 0.0);
    }

    /// A fault whose excitation is contradictory (`y = x ∧ ¬x` can
    /// never rise) buried under enough XOR state that a small backtrack
    /// budget aborts before exhausting the space.
    fn redundant_netlist() -> Netlist {
        let mut b = NetlistBuilder::new("redundant");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 100e6);
        let qs: Vec<_> = (0..4).map(|i| b.add_net(format!("q{i}"))).collect();
        for (i, &q) in qs.iter().enumerate() {
            b.add_flop(format!("ff{i}"), q, q, clk, ClockEdge::Rising, blk)
                .unwrap();
        }
        let x1 = b.add_net("x1");
        let x2 = b.add_net("x2");
        let x = b.add_net("x");
        let nx = b.add_net("nx");
        let c = b.add_net("c");
        let qc = b.add_net("qc");
        b.add_gate(CellKind::Xor2, &[qs[0], qs[1]], x1, blk)
            .unwrap();
        b.add_gate(CellKind::Xor2, &[qs[2], qs[3]], x2, blk)
            .unwrap();
        b.add_gate(CellKind::Xor2, &[x1, x2], x, blk).unwrap();
        b.add_gate(CellKind::Inv, &[x], nx, blk).unwrap();
        b.add_gate(CellKind::And2, &[x, nx], c, blk).unwrap();
        b.add_flop("cap", c, qc, clk, ClockEdge::Rising, blk)
            .unwrap();
        b.add_primary_output(qc);
        b.finish().unwrap()
    }

    /// The regression the hybrid engine exists for: PODEM aborts on the
    /// redundant fault (backtrack budget too small to exhaust the
    /// space), silently deflating test coverage; the SAT engine proves
    /// the CNF unsatisfiable and reclassifies the fault `Untestable`.
    #[test]
    fn hybrid_reclassifies_podem_abort_as_untestable() {
        use scap_sim::{FaultSite, Polarity};
        let n = redundant_netlist();
        // Net insertion order: q0..q3, x1, x2, x, nx, c.
        let c = scap_netlist::NetId::new(8);
        let fault = TransitionFault::new(FaultSite::Net(c), Polarity::SlowToRise);
        let faults = FaultList::from_faults(vec![fault], 2);
        let cfg = AtpgConfig {
            backtrack_limit: 2,
            ..AtpgConfig::default()
        };
        let podem_run = Generator::new(&n, ClockId::new(0), cfg).run(&faults);
        assert_eq!(
            podem_run.status[0],
            FaultStatus::Aborted,
            "fixture must make PODEM abort for the regression to bite"
        );
        let hybrid_cfg = AtpgConfig {
            engine: EngineKind::Hybrid,
            ..cfg
        };
        let hybrid_run = Generator::new(&n, ClockId::new(0), hybrid_cfg).run(&faults);
        assert_eq!(
            hybrid_run.status[0],
            FaultStatus::Untestable,
            "SAT must prove the aborted fault untestable"
        );
        assert_eq!(hybrid_run.num_aborted(), 0);
        assert!(hybrid_run.test_coverage() >= podem_run.test_coverage());
    }

    #[test]
    fn sat_engine_matches_podem_coverage_on_ring() {
        let n = ring(12);
        let faults = FaultList::full(&n);
        let cfg = AtpgConfig {
            engine: EngineKind::Sat,
            ..AtpgConfig::default()
        };
        let run = Generator::new(&n, ClockId::new(0), cfg).run(&faults);
        let podem = Generator::new(&n, ClockId::new(0), AtpgConfig::default()).run(&faults);
        assert!(
            run.test_coverage() >= podem.test_coverage() - 1e-9,
            "sat {:.3} vs podem {:.3}",
            run.test_coverage(),
            podem.test_coverage()
        );
        assert_eq!(run.num_aborted(), 0, "sat must never abort on the ring");
    }

    #[test]
    fn engine_kind_parses_its_own_labels() {
        for e in [EngineKind::Podem, EngineKind::Sat, EngineKind::Hybrid] {
            assert_eq!(EngineKind::parse(e.label()), Some(e));
        }
        assert_eq!(EngineKind::parse("bogus"), None);
        assert_eq!(EngineKind::default(), EngineKind::Podem);
    }

    #[test]
    fn max_patterns_caps_the_run() {
        let n = ring(12);
        let faults = FaultList::full(&n);
        let cfg = AtpgConfig {
            max_patterns: 2,
            ..AtpgConfig::default()
        };
        let gen = Generator::new(&n, ClockId::new(0), cfg);
        let run = gen.run(&faults);
        assert!(run.patterns.len() <= 2);
    }
}
