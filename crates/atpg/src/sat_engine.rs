//! The SAT-backed ATPG engine: a two-time-frame Tseitin CNF encoder
//! over the levelized netlist plus a CDCL solve ([`scap_sat`]).
//!
//! PODEM can only *abort* on hard faults — when its backtrack budget
//! runs out it has proven nothing, and the aborted fault silently stays
//! in the test-coverage denominator. This engine turns aborts into
//! verdicts: it encodes the exact launch/capture conditions the PODEM
//! planes check as a CNF formula whose models are *detecting
//! assignments*, so
//!
//! * `Sat` extracts the model into the pattern's care bits (a test),
//! * `Unsat` is a **proof of untestability** — the fault leaves the
//!   coverage denominator,
//! * `Unknown` (conflict limit exhausted) keeps the fault aborted.
//!
//! # Encoding
//!
//! The formula is built over the *support* of the fault only — the nets
//! that can influence launch, excitation, or the good/faulty difference
//! at an in-cone capture flop. Everything else stays unencoded, so
//! extracted patterns keep their don't-care bits and remain
//! compactable/fillable exactly like PODEM tests. Three variable planes
//! share one pool of scan-load and primary-input variables:
//!
//! * **Frame 1** (scan load applied): flop Q nets alias their scan-load
//!   variable, PI nets their held primary-input variable, and each gate
//!   gets Tseitin clauses enumerated from [`CellKind::eval_bool`] — the
//!   netlist's own truth tables are the oracle, so the encoder cannot
//!   disagree with the simulator.
//! * **Frame 2, good machine**: flop Q variables alias per
//!   [`State2Src`] — active-domain flops read the frame-1 value of
//!   their D net (launch-off-capture); others hold their load, take the
//!   upstream cell's load, or the constant scan-in (launch-off-shift).
//!   Primary inputs are *held*: frame 2 reuses the frame-1 variables.
//! * **Frame 2, faulty machine**: fresh variables only on the fault
//!   site's output cone. A stem fault pins the site net to its
//!   pre-transition value; a branch (pin) fault substitutes that
//!   constant for the one reading gate input, so the difference is born
//!   inside the gate — the same overlay discipline the PODEM scratch
//!   keeps. Out-of-cone inputs read the good machine directly.
//!
//! Constraints: frame-1 site = initial value (launch), frame-2 good
//! site = final value (excitation), and an OR over per-capture-flop
//! difference indicators (detection). Existing care bits of the pattern
//! being extended become unit clauses, which is what lets the generator
//! drop a SAT test into its normal greedy compaction + fill + PPSFP
//! drop-simulation path unchanged.
//!
//! Clause emission walks [`Levelization::order`] once per plane, so the
//! encoder is iterative — no recursion to overflow on deep logic.
//!
//! [`CellKind::eval_bool`]: scap_netlist::CellKind::eval_bool

use crate::engine::{
    observable_mask, observation_points, scan_upstream, state2_sources, State2Src,
};
use scap_dft::TestPattern;
use scap_netlist::{ClockId, GateId, Levelization, Logic, NetId, NetSource, Netlist};
use scap_sat::{Lit, SolveResult, Solver, SolverStats};
use scap_sim::{FaultSite, LaunchMode, TransitionFault};

/// Outcome of one SAT ATPG attempt.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SatOutcome {
    /// A detecting assignment exists; the pattern has been extended in
    /// place with its care bits.
    Test,
    /// The CNF is unsatisfiable: no two-frame assignment detects the
    /// fault. This is a proof, unlike a PODEM abort.
    Untestable,
    /// The conflict limit was exhausted first; no verdict.
    Unknown,
}

/// The SAT ATPG engine, reusable across the faults of one clock domain.
#[derive(Debug)]
pub struct SatAtpg<'a> {
    netlist: &'a Netlist,
    /// Combinational levelization, the clause-emission order.
    levels: Levelization,
    /// Frame-2 state source per flop (shared semantics with PODEM).
    state2: Vec<State2Src>,
    /// Observation points: D nets of active-domain flops.
    observed: Vec<NetId>,
    /// Per net: structurally reaches an observation point?
    observable: Vec<bool>,
    /// Per net: primary-input index, `u32::MAX` otherwise.
    pi_of_net: Vec<u32>,
    /// Conflict budget per solve (`Unknown` past it).
    conflict_limit: u64,
    /// Optional cardinality budget: at most this many scan-load care
    /// bits may be driven to 1 per generated pattern (the
    /// sequential-counter switching-budget hook — loaded 1s are what
    /// toggles at launch under the zero-fill flows).
    load_ones_budget: Option<usize>,
}

/// Per-fault encoder state: the solver plus per-plane literal memos.
struct Encoder<'e, 'a> {
    eng: &'e SatAtpg<'a>,
    solver: Solver,
    /// A variable asserted true, so constants are literals too.
    true_lit: Lit,
    /// Frame-1 literal per net.
    f1: Vec<Option<Lit>>,
    /// Frame-2 good-machine literal per net.
    g2: Vec<Option<Lit>>,
    /// Frame-2 faulty-machine literal per net (cone nets only).
    fb: Vec<Option<Lit>>,
    /// Scan-load literal per flop (shared by both frames).
    load: Vec<Option<Lit>>,
    /// Primary-input literal per PI index (held across frames).
    pi: Vec<Option<Lit>>,
    /// Per-plane need marks, filled by the support walk.
    need_f1: Vec<bool>,
    need_g2: Vec<bool>,
    need_fb: Vec<bool>,
    /// Fault-cone membership per net.
    cone: Vec<bool>,
    /// Care bits of the pattern under extension (unit clauses).
    care_load: Vec<Logic>,
    care_pi: Vec<Logic>,
    fault: TransitionFault,
    /// The site's pre-transition value — the stuck value the slow
    /// signal still presents in frame 2.
    v_init: bool,
}

/// A (plane, net) item on the support-marking worklist.
#[derive(Clone, Copy)]
enum Need {
    F1(NetId),
    G2(NetId),
    Fb(NetId),
}

impl<'e, 'a> Encoder<'e, 'a> {
    fn new(eng: &'e SatAtpg<'a>, fault: TransitionFault, pattern: &TestPattern) -> Self {
        let n = eng.netlist;
        let mut solver = Solver::new();
        solver.set_conflict_limit(eng.conflict_limit);
        let true_lit = Lit::pos(solver.new_var());
        solver.add_clause(&[true_lit]);
        let mut enc = Encoder {
            eng,
            solver,
            true_lit,
            f1: vec![None; n.num_nets()],
            g2: vec![None; n.num_nets()],
            fb: vec![None; n.num_nets()],
            load: vec![None; n.num_flops()],
            pi: vec![None; n.primary_inputs().len()],
            need_f1: vec![false; n.num_nets()],
            need_g2: vec![false; n.num_nets()],
            need_fb: vec![false; n.num_nets()],
            cone: vec![false; n.num_nets()],
            care_load: pattern.load.clone(),
            care_pi: pattern.pi.clone(),
            fault,
            v_init: fault.polarity.initial_value(),
        };
        enc.mark_cone();
        enc
    }

    /// Forward cone of the fault site: the only nets where good and
    /// faulty machines can differ. Mirrors PODEM's cone tagging.
    fn mark_cone(&mut self) {
        let n = self.eng.netlist;
        let mut work: Vec<u32> = Vec::new();
        match self.fault.site {
            FaultSite::Net(net) => {
                self.cone[net.index()] = true;
                work.push(net.raw());
            }
            FaultSite::Pin { gate, .. } => {
                // The difference is born inside the reading gate.
                let out = n.gate(gate).output;
                self.cone[out.index()] = true;
                work.push(out.raw());
            }
        }
        while let Some(ni) = work.pop() {
            for &g in n.fanout_gates(NetId::new(ni)) {
                let out = n.gate(g).output;
                if !self.cone[out.index()] {
                    self.cone[out.index()] = true;
                    work.push(out.raw());
                }
            }
        }
    }

    /// Marks every (plane, net) the constraints transitively read,
    /// starting from `roots`. Iterative: one worklist, three mark maps.
    fn mark_support(&mut self, roots: impl IntoIterator<Item = Need>) {
        let n = self.eng.netlist;
        let mut work: Vec<Need> = roots.into_iter().collect();
        while let Some(item) = work.pop() {
            match item {
                Need::F1(net) => {
                    if std::mem::replace(&mut self.need_f1[net.index()], true) {
                        continue;
                    }
                    if let Some(NetSource::Gate(g)) = n.net(net).source {
                        work.extend(n.gate(g).inputs.iter().map(|&i| Need::F1(i)));
                    }
                }
                Need::G2(net) => {
                    if std::mem::replace(&mut self.need_g2[net.index()], true) {
                        continue;
                    }
                    match n.net(net).source {
                        Some(NetSource::Gate(g)) => {
                            work.extend(n.gate(g).inputs.iter().map(|&i| Need::G2(i)));
                        }
                        Some(NetSource::Flop(f)) => {
                            if let State2Src::FromD(d) = self.eng.state2[f.index()] {
                                work.push(Need::F1(d));
                            }
                        }
                        _ => {}
                    }
                }
                Need::Fb(net) => {
                    if !self.cone[net.index()] {
                        work.push(Need::G2(net));
                        continue;
                    }
                    if std::mem::replace(&mut self.need_fb[net.index()], true) {
                        continue;
                    }
                    // The stem site is a pinned constant; every other
                    // cone net is gate-driven (the cone grows only
                    // through gate fanout).
                    if self.fault.site == FaultSite::Net(net) {
                        continue;
                    }
                    let Some(NetSource::Gate(g)) = n.net(net).source else {
                        continue;
                    };
                    let injected = self.injected_pin(g);
                    for (k, &inp) in n.gate(g).inputs.iter().enumerate() {
                        if k != injected {
                            work.push(Need::Fb(inp));
                        }
                    }
                }
            }
        }
    }

    /// The input pin of `g` the fault replaces with a constant, or
    /// `usize::MAX` when none.
    fn injected_pin(&self, g: GateId) -> usize {
        match self.fault.site {
            FaultSite::Pin { gate, pin } if gate == g => pin as usize,
            _ => usize::MAX,
        }
    }

    /// A constant as a literal.
    fn konst(&self, b: bool) -> Lit {
        if b {
            self.true_lit
        } else {
            !self.true_lit
        }
    }

    /// The scan-load literal of flop `i`, unit-constrained to any care
    /// bit the pattern under extension already commits.
    fn load_lit(&mut self, i: usize) -> Lit {
        if let Some(l) = self.load[i] {
            return l;
        }
        let l = Lit::pos(self.solver.new_var());
        self.load[i] = Some(l);
        match self.care_load[i] {
            Logic::Zero => {
                self.solver.add_clause(&[!l]);
            }
            Logic::One => {
                self.solver.add_clause(&[l]);
            }
            Logic::X => {}
        }
        l
    }

    /// The primary-input literal of PI index `i` (held across frames).
    fn pi_lit(&mut self, i: usize) -> Lit {
        if let Some(l) = self.pi[i] {
            return l;
        }
        let l = Lit::pos(self.solver.new_var());
        self.pi[i] = Some(l);
        match self.care_pi[i] {
            Logic::Zero => {
                self.solver.add_clause(&[!l]);
            }
            Logic::One => {
                self.solver.add_clause(&[l]);
            }
            Logic::X => {}
        }
        l
    }

    /// Frame-1 literal of a net whose gate (if any) is already encoded.
    fn f1_lit(&mut self, net: NetId) -> Lit {
        if let Some(l) = self.f1[net.index()] {
            return l;
        }
        let l = match self.eng.netlist.net(net).source {
            Some(NetSource::Gate(_)) => {
                unreachable!("f1 gate output read before its level")
            }
            Some(NetSource::Flop(f)) => self.load_lit(f.index()),
            Some(NetSource::PrimaryInput) => {
                let i = self.eng.pi_of_net[net.index()] as usize;
                self.pi_lit(i)
            }
            Some(NetSource::Const(b)) => self.konst(b),
            // An undriven net carries no defined value; a free variable
            // over-approximates it (the builder rejects these anyway).
            None => Lit::pos(self.solver.new_var()),
        };
        self.f1[net.index()] = Some(l);
        l
    }

    /// Frame-2 good-machine literal of a net whose support (gate or
    /// frame-1 alias target) is already encoded.
    fn g2_lit(&mut self, net: NetId) -> Lit {
        if let Some(l) = self.g2[net.index()] {
            return l;
        }
        let l = match self.eng.netlist.net(net).source {
            Some(NetSource::Gate(_)) => {
                unreachable!("g2 gate output read before its level")
            }
            Some(NetSource::Flop(f)) => match self.eng.state2[f.index()] {
                State2Src::FromD(d) => self.f1_lit(d),
                State2Src::Hold => self.load_lit(f.index()),
                State2Src::LoadOf(j) => self.load_lit(j as usize),
                State2Src::ScanIn => self.konst(false),
            },
            // Primary inputs are held across the launch cycle.
            Some(NetSource::PrimaryInput) => {
                let i = self.eng.pi_of_net[net.index()] as usize;
                self.pi_lit(i)
            }
            Some(NetSource::Const(b)) => self.konst(b),
            None => Lit::pos(self.solver.new_var()),
        };
        self.g2[net.index()] = Some(l);
        l
    }

    /// Frame-2 faulty-machine literal. Outside the cone the faulty
    /// machine equals the good one by construction.
    fn fb_lit(&mut self, net: NetId) -> Lit {
        if !self.cone[net.index()] {
            return self.g2_lit(net);
        }
        if let Some(l) = self.fb[net.index()] {
            return l;
        }
        debug_assert_eq!(
            self.fault.site,
            FaultSite::Net(net),
            "cone gate output read before its level"
        );
        // A stem fault presents the pre-transition value in frame 2.
        let l = self.konst(self.v_init);
        self.fb[net.index()] = Some(l);
        l
    }

    /// Tseitin encoding of `out = kind(ins)` by truth-table
    /// enumeration, one clause per input row, with
    /// [`CellKind::eval_bool`](scap_netlist::CellKind::eval_bool) as
    /// the function oracle (≤ 4 inputs on every library cell, so ≤ 16
    /// clauses per gate).
    fn emit_gate(&mut self, g: GateId, out: Lit, ins: &[Lit]) {
        let kind = self.eng.netlist.gate(g).kind;
        let k = ins.len();
        let mut row = vec![false; k];
        for m in 0..1usize << k {
            for (b, r) in row.iter_mut().enumerate() {
                *r = (m >> b) & 1 == 1;
            }
            let o = kind.eval_bool(&row);
            let mut clause: Vec<Lit> = ins
                .iter()
                .zip(&row)
                .map(|(&l, &r)| if r { !l } else { l })
                .collect();
            clause.push(if o { out } else { !out });
            self.solver.add_clause(&clause);
        }
    }

    /// Emits the clauses of every needed gate, one level-order sweep
    /// per plane. Frame 1 goes first (frame-2 flop aliases read it),
    /// then the good frame 2, then the faulty overlay.
    fn encode_planes(&mut self) {
        let order: Vec<GateId> = self.eng.levels.order().to_vec();
        for &g in &order {
            let out = self.eng.netlist.gate(g).output;
            if !self.need_f1[out.index()] || self.f1[out.index()].is_some() {
                continue;
            }
            let inputs = self.eng.netlist.gate(g).inputs.clone();
            let ins: Vec<Lit> = inputs.iter().map(|&i| self.f1_lit(i)).collect();
            let ol = Lit::pos(self.solver.new_var());
            self.f1[out.index()] = Some(ol);
            self.emit_gate(g, ol, &ins);
        }
        for &g in &order {
            let out = self.eng.netlist.gate(g).output;
            if !self.need_g2[out.index()] || self.g2[out.index()].is_some() {
                continue;
            }
            let inputs = self.eng.netlist.gate(g).inputs.clone();
            let ins: Vec<Lit> = inputs.iter().map(|&i| self.g2_lit(i)).collect();
            let ol = Lit::pos(self.solver.new_var());
            self.g2[out.index()] = Some(ol);
            self.emit_gate(g, ol, &ins);
        }
        for &g in &order {
            let out = self.eng.netlist.gate(g).output;
            if !self.need_fb[out.index()]
                || self.fb[out.index()].is_some()
                || self.fault.site == FaultSite::Net(out)
            {
                continue;
            }
            let inputs = self.eng.netlist.gate(g).inputs.clone();
            let injected = self.injected_pin(g);
            let ins: Vec<Lit> = inputs
                .iter()
                .enumerate()
                .map(|(k, &i)| {
                    if k == injected {
                        self.konst(self.v_init)
                    } else {
                        self.fb_lit(i)
                    }
                })
                .collect();
            let ol = Lit::pos(self.solver.new_var());
            self.fb[out.index()] = Some(ol);
            self.emit_gate(g, ol, &ins);
        }
    }
}

impl<'a> SatAtpg<'a> {
    /// Builds a SAT engine for one clock domain and launch mode, with a
    /// per-solve conflict budget.
    pub fn new(
        netlist: &'a Netlist,
        active_clock: ClockId,
        mode: LaunchMode,
        conflict_limit: u64,
    ) -> Self {
        let observed = observation_points(netlist, active_clock);
        let observable = observable_mask(netlist, &observed);
        let upstream = scan_upstream(netlist);
        let state2 = state2_sources(netlist, active_clock, mode, &upstream);
        let mut pi_of_net = vec![u32::MAX; netlist.num_nets()];
        for (i, p) in netlist.primary_inputs().iter().enumerate() {
            pi_of_net[p.index()] = i as u32;
        }
        SatAtpg {
            netlist,
            levels: Levelization::build(netlist),
            state2,
            observed,
            observable,
            pi_of_net,
            conflict_limit,
            load_ones_budget: None,
        }
    }

    /// Caps the number of scan-load bits a generated pattern may drive
    /// to 1, as a sequential-counter cardinality constraint over the
    /// encoded load variables — the per-pattern switching-budget hook
    /// (loaded 1s are what toggles at launch under the zero-fill
    /// flows).
    pub fn with_load_ones_budget(mut self, budget: usize) -> Self {
        self.load_ones_budget = Some(budget);
        self
    }

    /// The net where the fault's effect first appears: the net itself
    /// for a stem fault, the reading gate's output for a branch fault.
    fn effect_net(&self, fault: TransitionFault) -> usize {
        match fault.site {
            FaultSite::Net(n) => n.index(),
            FaultSite::Pin { gate, .. } => self.netlist.gate(gate).output.index(),
        }
    }

    /// Tries to extend `pattern` (in place) so it detects `fault`,
    /// returning the verdict. On `Untestable` and `Unknown` the pattern
    /// is left untouched. Statistics land on the `sat.*` counters.
    pub fn generate(&self, fault: TransitionFault, pattern: &mut TestPattern) -> SatOutcome {
        if !self.observable[self.effect_net(fault)] {
            // No structural path to a capture flop: untestable without
            // building a formula (the same shortcut PODEM takes).
            return SatOutcome::Untestable;
        }
        let _span = scap_obs::span!("atpg.sat_solve");
        let mut enc = Encoder::new(self, fault, pattern);

        // Support: launch + excitation sites, plus both machines at
        // every in-cone observation point.
        let site = fault.site.net(self.netlist);
        let mut roots = vec![Need::F1(site), Need::G2(site)];
        let capture: Vec<NetId> = self
            .observed
            .iter()
            .copied()
            .filter(|o| enc.cone[o.index()])
            .collect();
        for &o in &capture {
            roots.push(Need::G2(o));
            roots.push(Need::Fb(o));
        }
        if capture.is_empty() {
            // The observable pre-check makes this unreachable, but a
            // formula with no detection disjunct must not be solved.
            return SatOutcome::Untestable;
        }
        enc.mark_support(roots);
        enc.encode_planes();

        // Launch: the site holds the pre-transition value in frame 1.
        let launch = enc.f1_lit(site);
        let li = fault.polarity.initial_value();
        enc.solver.add_clause(&[if li { launch } else { !launch }]);

        // Excitation: the good machine reaches the final value.
        let excite = enc.g2_lit(site);
        let lf = fault.polarity.final_value();
        enc.solver.add_clause(&[if lf { excite } else { !excite }]);

        // Detection: some in-cone capture flop sees a good/faulty
        // difference. d → (g ⊕ f); assert the OR of the d indicators.
        let mut any: Vec<Lit> = Vec::new();
        for &o in &capture {
            let g = enc.g2_lit(o);
            let f = enc.fb_lit(o);
            let d = Lit::pos(enc.solver.new_var());
            enc.solver.add_clause(&[!d, g, f]);
            enc.solver.add_clause(&[!d, !g, !f]);
            any.push(d);
        }
        enc.solver.add_clause(&any);

        // Optional switching budget over the encoded load bits.
        if let Some(k) = self.load_ones_budget {
            let loads: Vec<Lit> = enc.load.iter().copied().flatten().collect();
            enc.solver.add_at_most_k(&loads, k);
        }

        let result = enc.solver.solve();
        record_stats(enc.solver.stats());
        match result {
            SolveResult::Sat => {
                // Extract the model into the pattern's care bits; bits
                // whose variable never entered the encoding stay X, so
                // fill and compaction behave exactly as for PODEM tests.
                for (i, l) in enc.load.iter().enumerate() {
                    if let Some(l) = l {
                        if let Some(v) = enc.solver.value(l.var()) {
                            pattern.load[i] = Logic::from_bool(v ^ l.is_neg());
                        }
                    }
                }
                for (i, l) in enc.pi.iter().enumerate() {
                    if let Some(l) = l {
                        if let Some(v) = enc.solver.value(l.var()) {
                            pattern.pi[i] = Logic::from_bool(v ^ l.is_neg());
                        }
                    }
                }
                scap_obs::counter!("sat.tests_found").incr();
                SatOutcome::Test
            }
            SolveResult::Unsat => {
                scap_obs::counter!("sat.untestable_proofs").incr();
                SatOutcome::Untestable
            }
            SolveResult::Unknown => SatOutcome::Unknown,
        }
    }
}

/// Folds one solve's statistics into the process-wide registry.
fn record_stats(stats: SolverStats) {
    scap_obs::counter!("sat.solves").incr();
    scap_obs::counter!("sat.conflicts").add(stats.conflicts);
    scap_obs::counter!("sat.decisions").add(stats.decisions);
    scap_obs::counter!("sat.propagations").add(stats.propagations);
    scap_obs::counter!("sat.learned_clauses").add(stats.learned_clauses);
}

#[cfg(test)]
mod tests {
    use super::*;
    use scap_netlist::{CellKind, ClockEdge, NetlistBuilder};
    use scap_sim::Polarity;

    const CLK: ClockId = ClockId::new(0);
    /// AND output net in [`and_netlist`] (insertion order).
    const Y: NetId = NetId::new(4);

    /// Two toggle flops (`D = ¬Q`) ANDed into a capture flop, so frame 2
    /// inverts the loads under launch-off-capture and both transitions
    /// on the AND output are excitable.
    fn and_netlist() -> Netlist {
        let mut b = NetlistBuilder::new("and");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 100e6);
        let q1 = b.add_net("q1");
        let q2 = b.add_net("q2");
        let n1 = b.add_net("n1");
        let n2 = b.add_net("n2");
        let y = b.add_net("y");
        let q3 = b.add_net("q3");
        b.add_gate(CellKind::Inv, &[q1], n1, blk).unwrap();
        b.add_gate(CellKind::Inv, &[q2], n2, blk).unwrap();
        b.add_flop("f1", n1, q1, clk, ClockEdge::Rising, blk)
            .unwrap();
        b.add_flop("f2", n2, q2, clk, ClockEdge::Rising, blk)
            .unwrap();
        b.add_gate(CellKind::And2, &[q1, q2], y, blk).unwrap();
        b.add_flop("f3", y, q3, clk, ClockEdge::Rising, blk)
            .unwrap();
        b.add_primary_output(q3);
        b.finish().unwrap()
    }

    #[test]
    fn finds_test_on_and_gate_output() {
        let n = and_netlist();
        let sat = SatAtpg::new(&n, CLK, LaunchMode::Capture, 10_000);
        // Slow-to-rise on y: frame 1 y = l1∧l2 = 0, frame 2 good
        // y = ¬l1∧¬l2 = 1, so loads (0,0) detect at flop f3.
        let f = TransitionFault::new(FaultSite::Net(Y), Polarity::SlowToRise);
        let mut p = TestPattern::unspecified(&n);
        assert_eq!(sat.generate(f, &mut p), SatOutcome::Test);
        assert_eq!(p.load[0], Logic::Zero);
        assert_eq!(p.load[1], Logic::Zero);
    }

    #[test]
    fn conflicting_care_bits_make_fault_unsat() {
        let n = and_netlist();
        let sat = SatAtpg::new(&n, CLK, LaunchMode::Capture, 10_000);
        // Slow-to-fall needs frame-1 y = 1, i.e. both loads at 1;
        // pinning one to 0 makes the incremental problem unsatisfiable.
        let f = TransitionFault::new(FaultSite::Net(Y), Polarity::SlowToFall);
        let mut p = TestPattern::unspecified(&n);
        p.load[0] = Logic::Zero;
        let before = p.clone();
        assert_eq!(sat.generate(f, &mut p), SatOutcome::Untestable);
        assert_eq!(p, before, "failed attempts must not touch the pattern");
    }

    #[test]
    fn unobservable_fault_is_untestable_without_solving() {
        let mut b = NetlistBuilder::new("dangling");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 100e6);
        let q1 = b.add_net("q1");
        let n1 = b.add_net("n1");
        let y = b.add_net("y");
        b.add_gate(CellKind::Inv, &[q1], n1, blk).unwrap();
        b.add_flop("f1", n1, q1, clk, ClockEdge::Rising, blk)
            .unwrap();
        b.add_gate(CellKind::Inv, &[q1], y, blk).unwrap();
        b.add_primary_output(y);
        let n = b.finish().unwrap();
        let sat = SatAtpg::new(&n, CLK, LaunchMode::Capture, 10_000);
        // y reaches only a primary output, never a capture flop.
        let f = TransitionFault::new(FaultSite::Net(NetId::new(2)), Polarity::SlowToFall);
        let mut p = TestPattern::unspecified(&n);
        assert_eq!(sat.generate(f, &mut p), SatOutcome::Untestable);
    }

    #[test]
    fn load_ones_budget_restricts_models() {
        let n = and_netlist();
        // Slow-to-fall needs both loads at 1: a budget of one loaded 1
        // makes it unsatisfiable, proving the cardinality bites.
        let f = TransitionFault::new(FaultSite::Net(Y), Polarity::SlowToFall);
        let sat = SatAtpg::new(&n, CLK, LaunchMode::Capture, 10_000).with_load_ones_budget(1);
        let mut p = TestPattern::unspecified(&n);
        assert_eq!(sat.generate(f, &mut p), SatOutcome::Untestable);
        let sat = SatAtpg::new(&n, CLK, LaunchMode::Capture, 10_000).with_load_ones_budget(2);
        assert_eq!(sat.generate(f, &mut p), SatOutcome::Test);
    }
}
