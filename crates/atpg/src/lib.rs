//! Transition-delay-fault automatic test pattern generation.
//!
//! Replaces the ATPG half of the paper's flow (Synopsys TetraMAX):
//!
//! * [`Podem`] — a two-time-frame PODEM engine for transition faults under
//!   launch-off-capture: frame 1 justifies the initial value at the fault
//!   site from the scan load; frame 2 (the combinational response after
//!   the launch edge, with primary inputs held) justifies the final value
//!   and propagates the fault effect to a capturing scan flop,
//! * [`Generator`] — the pattern-generation loop with greedy dynamic
//!   compaction (secondary fault targeting into unspecified bits) and
//!   PPSFP fault dropping, mirroring the greedy many-faults-per-pattern
//!   behaviour the paper observes in commercial tools,
//! * per-block fault targeting via
//!   [`FaultList::for_blocks`](scap_sim::FaultList::for_blocks) — the
//!   mechanism behind the paper's staged low-noise procedure.
//!
//! # Example
//!
//! ```no_run
//! # use scap_netlist::{Netlist, ClockId};
//! # fn demo(netlist: &Netlist) {
//! use scap_dft::FillPolicy;
//! use scap_sim::FaultList;
//! use scap_tgen::{AtpgConfig, Generator};
//!
//! let faults = FaultList::full(netlist);
//! let config = AtpgConfig { fill: FillPolicy::Random, ..AtpgConfig::default() };
//! let run = Generator::new(netlist, ClockId::new(0), config).run(&faults);
//! println!("{} patterns, {:.2}% coverage", run.patterns.len(), run.test_coverage() * 100.0);
//! # }
//! ```

#![warn(missing_docs)]
#![warn(missing_debug_implementations)]

mod engine;
mod generator;
mod sat_engine;

pub use engine::{Podem, PodemOutcome, PodemScratch};
pub use generator::{AtpgConfig, AtpgRun, EngineKind, FaultStatus, Generator};
pub use sat_engine::{SatAtpg, SatOutcome};
