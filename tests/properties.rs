//! Property-based tests (proptest) on core invariants.

use proptest::prelude::*;
use scap::dft::{FillPolicy, TestPattern};
use scap::netlist::{
    CellKind, ClockEdge, Levelization, Logic, NetId, Netlist, NetlistBuilder, ScanRole,
};
use scap::power::solve_cg;
use scap::sim::{BatchSim, EventSim, LogicSim};
use scap::timing::DelayAnnotation;

/// Strategy: a random acyclic netlist with `n_ff` flops and `n_gates`
/// two-input gates, everything observable enough to be interesting.
fn arb_netlist(max_gates: usize) -> impl Strategy<Value = Netlist> {
    (2usize..6, 4usize..max_gates.max(5), any::<u64>()).prop_map(|(n_ff, n_gates, seed)| {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut b = NetlistBuilder::new("prop");
        let blk = b.add_block("B1");
        let clk = b.add_clock_domain("clka", 100e6);
        let mut pool = vec![b.add_primary_input("pi0"), b.add_primary_input("pi1")];
        let qs: Vec<NetId> = (0..n_ff).map(|i| b.add_net(format!("q{i}"))).collect();
        pool.extend(qs.iter().copied());
        let kinds = [
            CellKind::Nand2,
            CellKind::Nor2,
            CellKind::Xor2,
            CellKind::And2,
            CellKind::Or2,
        ];
        let mut outs = Vec::new();
        for i in 0..n_gates {
            let kind = kinds[rng.gen_range(0..kinds.len())];
            let a = pool[rng.gen_range(0..pool.len())];
            let c = pool[rng.gen_range(0..pool.len())];
            let y = b.add_net(format!("w{i}"));
            b.add_gate(kind, &[a, c], y, blk).unwrap();
            pool.push(y);
            outs.push(y);
        }
        for (i, &q) in qs.iter().enumerate() {
            let d = outs[rng.gen_range(0..outs.len())];
            b.add_flop(format!("ff{i}"), d, q, clk, ClockEdge::Rising, blk)
                .unwrap();
        }
        let mut n = b.finish().unwrap();
        for i in 0..n_ff {
            n.set_scan_role(
                scap::netlist::FlopId::new(i as u32),
                ScanRole {
                    chain: 0,
                    position: i as u32,
                },
            );
        }
        n
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// The levelization visits every gate exactly once and never before
    /// its combinational predecessors.
    #[test]
    fn levelization_is_a_valid_topological_order(n in arb_netlist(40)) {
        let lv = Levelization::build(&n);
        prop_assert_eq!(lv.order().len(), n.num_gates());
        let mut pos = vec![usize::MAX; n.num_gates()];
        for (i, &g) in lv.order().iter().enumerate() {
            pos[g.index()] = i;
        }
        for &g in lv.order() {
            for &inp in &n.gate(g).inputs {
                if let Some(scap::netlist::NetSource::Gate(src)) = n.net(inp).source {
                    prop_assert!(pos[src.index()] < pos[g.index()]);
                    prop_assert!(lv.level(src) < lv.level(g));
                }
            }
        }
    }

    /// Bit-parallel simulation agrees with scalar three-valued simulation
    /// on fully-specified vectors — for every bit lane.
    #[test]
    fn batch_sim_matches_scalar_sim(
        n in arb_netlist(30),
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let scalar = LogicSim::new(&n);
        let batch = BatchSim::new(&n);
        let lanes = 7usize;
        let flop_words: Vec<u64> =
            (0..n.num_flops()).map(|_| rng.gen::<u64>() & ((1 << lanes) - 1)).collect();
        let pi_words: Vec<u64> =
            (0..n.primary_inputs().len()).map(|_| rng.gen::<u64>() & ((1 << lanes) - 1)).collect();
        let words = batch.eval(&flop_words, &pi_words);
        for lane in 0..lanes {
            let loads: Vec<Logic> = flop_words
                .iter()
                .map(|w| Logic::from(w >> lane & 1 == 1))
                .collect();
            let pis: Vec<Logic> = pi_words
                .iter()
                .map(|w| Logic::from(w >> lane & 1 == 1))
                .collect();
            let values = scalar.eval(&loads, &pis, None);
            for i in 0..n.num_nets() {
                prop_assert_eq!(
                    words[i] >> lane & 1 == 1,
                    values[i] == Logic::One,
                    "net {} lane {}", i, lane
                );
            }
        }
    }

    /// Filling never changes care bits, and every policy fully specifies
    /// the pattern.
    #[test]
    fn fill_preserves_care_bits(
        n in arb_netlist(20),
        seed in any::<u64>(),
        fill_idx in 0usize..4,
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let mut pattern = TestPattern::unspecified(&n);
        for v in pattern.load.iter_mut() {
            *v = match rng.gen_range(0..3) {
                0 => Logic::Zero,
                1 => Logic::One,
                _ => Logic::X,
            };
        }
        let policy = FillPolicy::ALL[fill_idx];
        let filled = pattern.fill(&n, policy, &mut rng);
        prop_assert_eq!(filled.load.len(), pattern.load.len());
        for (src, dst) in pattern.load.iter().zip(&filled.load) {
            if let Some(v) = src.to_bool() {
                prop_assert_eq!(v, *dst);
            }
        }
    }

    /// Three-valued simulation is monotone: refining an X input never
    /// changes an already-known net value.
    #[test]
    fn three_valued_simulation_is_monotone(
        n in arb_netlist(25),
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let sim = LogicSim::new(&n);
        let mut loads: Vec<Logic> = (0..n.num_flops())
            .map(|_| match rng.gen_range(0..3) {
                0 => Logic::Zero,
                1 => Logic::One,
                _ => Logic::X,
            })
            .collect();
        let pis: Vec<Logic> = (0..n.primary_inputs().len())
            .map(|_| Logic::from(rng.gen::<bool>()))
            .collect();
        let before = sim.eval(&loads, &pis, None);
        // Refine one X load (if any).
        if let Some(slot) = loads.iter_mut().position(|v| *v == Logic::X) {
            loads[slot] = Logic::from(rng.gen::<bool>());
            let after = sim.eval(&loads, &pis, None);
            for i in 0..n.num_nets() {
                if before[i].is_known() {
                    prop_assert_eq!(before[i], after[i], "net {}", i);
                }
            }
        }
    }

    /// The grid solver is linear: scaling all currents scales all drops.
    #[test]
    fn grid_solve_is_linear(
        k in 1.0f64..10.0,
        node in 1usize..15,
    ) {
        let n = 16usize;
        let branches: Vec<(u32, u32, f64)> =
            (0..n as u32 - 1).map(|i| (i, i + 1, 0.5)).collect();
        let mut pinned = vec![false; n];
        pinned[0] = true;
        let mut inj = vec![0.0; n];
        inj[node] = 0.01;
        let base = solve_cg(n, &branches, &pinned, &inj);
        inj[node] = 0.01 * k;
        let scaled = solve_cg(n, &branches, &pinned, &inj);
        for i in 0..n {
            prop_assert!((scaled[i] - k * base[i]).abs() < 1e-6 * (1.0 + k * base[i].abs()));
        }
    }

    /// Event simulation invariants: (a) each net's final value equals its
    /// initial value XOR its toggle-count parity; (b) the STW equals the
    /// last event's time; (c) inertial semantics never produce more
    /// toggles than transport semantics.
    #[test]
    fn event_sim_parity_and_inertial_bounds(
        n in arb_netlist(30),
        seed in any::<u64>(),
    ) {
        use rand::{Rng, SeedableRng};
        let mut rng = rand::rngs::StdRng::seed_from_u64(seed);
        let ann = DelayAnnotation::unit_wire(&n);
        let batch = BatchSim::new(&n);
        let loads: Vec<u64> = (0..n.num_flops()).map(|_| rng.gen::<u64>() & 1).collect();
        let pis: Vec<u64> = (0..n.primary_inputs().len()).map(|_| rng.gen::<u64>() & 1).collect();
        let frames = scap::sim::loc::loc_frames_batch(&batch, &loads, &pis, scap::netlist::ClockId::new(0));
        let frame1: Vec<bool> = frames.frame1.iter().map(|w| w & 1 == 1).collect();
        let launches: Vec<(scap::netlist::FlopId, bool, f64)> = n
            .flops()
            .iter()
            .enumerate()
            .filter(|(i, _)| (frames.state2[*i] ^ loads[*i]) & 1 == 1)
            .map(|(i, _)| (scap::netlist::FlopId::new(i as u32), frames.state2[i] & 1 == 1, 500.0))
            .collect();
        let inertial = EventSim::new(&n, &ann).run(&frame1, &launches);
        let transport = EventSim::new(&n, &ann)
            .with_transport_delays()
            .run(&frame1, &launches);
        // (c) inertial filters, never adds.
        prop_assert!(inertial.num_toggles() <= transport.num_toggles());
        // (a) parity for the transport run (no swallowed pulses).
        let counts = transport.toggle_counts(n.num_nets());
        for i in 0..n.num_nets() {
            let (r, f) = counts[i];
            let toggles = (r + f) as usize;
            if toggles > 0 {
                // Final value after an odd number of toggles differs from
                // the initial value.
                let last_rising = transport
                    .events
                    .iter()
                    .rev()
                    .find(|e| e.net.index() == i)
                    .map(|e| e.rising);
                if let Some(final_v) = last_rising {
                    prop_assert_eq!(
                        final_v != frame1[i],
                        toggles % 2 == 1,
                        "net {} toggles {}", i, toggles
                    );
                }
            }
        }
        // (b) STW is the last event time.
        if let Some(last) = transport.events.last() {
            prop_assert!((transport.stw_ps() - last.time_ps).abs() < 1e-9);
        }
    }

    /// Scan shift is a permutation plus the injected scan-in bits: every
    /// loaded value is either preserved somewhere or shifted out.
    #[test]
    fn scan_shift_conserves_interior_values(n in arb_netlist(20), si in any::<bool>()) {
        let loads: Vec<Logic> = (0..n.num_flops())
            .map(|i| Logic::from(i % 2 == 0))
            .collect();
        let shifted = scap::sim::loc::shift_state(&n, &loads, Logic::from(si));
        // Chain 0 holds all flops: position p takes position p-1's value.
        let mut by_pos: Vec<(u32, usize)> = n
            .flops()
            .iter()
            .enumerate()
            .map(|(i, f)| (f.scan.unwrap().position, i))
            .collect();
        by_pos.sort_unstable();
        for w in by_pos.windows(2) {
            prop_assert_eq!(shifted[w[1].1], loads[w[0].1]);
        }
        prop_assert_eq!(shifted[by_pos[0].1], Logic::from(si));
    }
}
