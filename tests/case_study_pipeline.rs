//! End-to-end pipeline test: every table/figure driver runs on a small
//! case study and reproduces the paper's qualitative relations.

use scap::{experiments, flows, CaseStudy};
use std::sync::OnceLock;

fn fixture() -> &'static (CaseStudy, flows::FlowResult, flows::FlowResult) {
    static FIXTURE: OnceLock<(CaseStudy, flows::FlowResult, flows::FlowResult)> = OnceLock::new();
    FIXTURE.get_or_init(|| {
        let study = CaseStudy::small();
        let conv = flows::conventional(&study);
        let na = flows::noise_aware(&study);
        (study, conv, na)
    })
}

#[test]
fn table1_reports_paper_shape() {
    let (study, _, _) = fixture();
    let r = experiments::table1(study);
    assert_eq!(r.clock_domains, 6);
    assert_eq!(r.scan_chains, 16);
    assert!(r.negative_edge_flops >= 1);
    assert!(r.transition_faults > r.total_scan_flops);
    // clka dominates with ~78 % of the flops.
    let clka = &r.domains[0];
    assert!(clka.scan_cells as f64 > 0.55 * r.total_scan_flops as f64);
}

#[test]
fn table3_case2_doubles_power_and_b5_dominates() {
    let (study, _, _) = fixture();
    let t3 = experiments::table3(study);
    let b5 = study.design.block_named("B5").unwrap().index();
    for (i, (c1, c2)) in t3.case1.blocks.iter().zip(&t3.case2.blocks).enumerate() {
        assert!(
            (c2.avg_power_mw - 2.0 * c1.avg_power_mw).abs() < 1e-9 * c1.avg_power_mw.max(1.0),
            "block {i}"
        );
    }
    for (i, b) in t3.case2.blocks.iter().enumerate() {
        if i != b5 {
            assert!(t3.case2.blocks[b5].avg_power_mw >= b.avg_power_mw);
        }
    }
    // The hot center block also sees the deepest statistical drop.
    for (i, b) in t3.case2.blocks.iter().enumerate() {
        if i != b5 {
            assert!(
                t3.case2.blocks[b5].worst_drop_vdd_v >= b.worst_drop_vdd_v,
                "B5 drop {} vs block {i} drop {}",
                t3.case2.blocks[b5].worst_drop_vdd_v,
                b.worst_drop_vdd_v
            );
        }
    }
}

#[test]
fn table4_scap_exceeds_cap() {
    let (study, conv, _) = fixture();
    let t4 = experiments::table4(study, conv);
    assert!(t4.stw_ps < t4.period_ps);
    // Power and worst drop are both underestimated by the CAP model.
    assert!(t4.scap.0 > t4.cap.0);
    assert!(t4.scap.2 >= t4.cap.2);
    // The paper reports roughly a 2x gap (STW ≈ half cycle).
    let ratio = t4.scap.0 / t4.cap.0;
    assert!(ratio > 1.2 && ratio < 5.0, "SCAP/CAP power ratio {ratio}");
}

#[test]
fn fig2_fig6_noise_aware_reduces_scap_violations() {
    let (study, conv, na) = fixture();
    let f2 = experiments::fig2(study, conv);
    let f6 = experiments::fig6(study, na);
    assert!(
        f6.fraction_above() < f2.fraction_above(),
        "noise-aware {:.3} must beat conventional {:.3}",
        f6.fraction_above(),
        f2.fraction_above()
    );
    // The noise-aware prefix (steps 1-2, other blocks targeted under
    // fill-0) keeps B5 nearly quiet.
    let step3 = na.steps.last().unwrap().1;
    if step3 > 0 {
        let prefix_mean: f64 = f6.scap_mw[..step3].iter().sum::<f64>() / step3 as f64;
        let conv_mean: f64 = f2.scap_mw.iter().sum::<f64>() / f2.scap_mw.len().max(1) as f64;
        assert!(
            prefix_mean < 0.5 * conv_mean,
            "fill-0 prefix {prefix_mean:.3} vs conventional {conv_mean:.3}"
        );
    }
}

#[test]
fn fig3_high_scap_pattern_drops_more() {
    let (study, conv, _) = fixture();
    let f3 = experiments::fig3(study, conv);
    assert!(f3.p1_map.worst_drop_vdd() >= f3.p2_map.worst_drop_vdd());
    assert!(f3.scap_mw.0 >= f3.scap_mw.1);
}

#[test]
fn fig4_flows_converge_with_more_noise_aware_patterns() {
    let (_, conv, na) = fixture();
    assert!(na.patterns.len() > conv.patterns.len());
    let gap = (conv.fault_coverage() - na.fault_coverage()).abs();
    assert!(gap < 0.1, "coverage gap {gap:.3}");
}

#[test]
fn fig7_regions_exist() {
    let (study, _, na) = fixture();
    let f7 = experiments::fig7(study, na);
    let active = f7.endpoints.iter().filter(|(_, n, _)| *n > 0.0).count();
    assert!(active > 0);
    // Region 1: some endpoints slow down under IR-drop.
    assert!(
        f7.endpoints.iter().any(|(_, n, s)| *n > 0.0 && s > n),
        "IR-drop must slow some endpoints"
    );
    assert!(f7.max_increase_pct() > 0.0);
    assert!(f7.max_increase_pct() < 100.0, "{}", f7.max_increase_pct());
}

#[test]
fn renders_are_nonempty() {
    let (study, conv, na) = fixture();
    let r = experiments::table1(study);
    assert!(experiments::render_table1(&r).contains("Scan Chains"));
    assert!(experiments::render_table2(&r).contains("clka"));
    let t3 = experiments::table3(study);
    assert!(experiments::render_table3(study, &t3).contains("Case1"));
    let t4 = experiments::table4(study, conv);
    assert!(experiments::render_table4(&t4).contains("SCAP"));
    assert!(experiments::render_fig4(conv, na).contains("patterns"));
    let f7 = experiments::fig7(study, na);
    assert!(experiments::render_fig7(&f7).contains("Region"));
}
