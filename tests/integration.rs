//! Cross-crate integration tests: the generated SOC, scan, ATPG, fault
//! simulation and power analyses must agree with each other.

use rand::{Rng, SeedableRng};
use scap::dft::{FillPolicy, PatternBatch, PatternSet, TestPattern};
use scap::netlist::Logic;
use scap::sim::FaultList;
use scap::sim::LaunchMode;
use scap::tgen::{AtpgConfig, FaultStatus, Generator, Podem, PodemOutcome};
use scap::{grade_patterns, CaseStudy, PatternAnalyzer};

fn study() -> CaseStudy {
    CaseStudy::new(0.004)
}

/// Every test PODEM produces must be confirmed by the independent PPSFP
/// fault simulator, and every "untestable" verdict must never be
/// contradicted by random patterns — the soundness contract between the
/// two engines.
#[test]
fn atpg_and_fault_simulation_agree() {
    let s = study();
    let n = &s.design.netlist;
    let clka = s.clka();
    let faults = FaultList::full(n);
    let gen = Generator::new(n, clka, AtpgConfig::default());
    let run = gen.run(&faults);

    // (a) grading the generated patterns re-detects everything the
    // generator claimed.
    let grade = grade_patterns(n, clka, &faults, &run.patterns);
    assert!(grade.num_detected() >= run.num_detected());

    // (b) no fault marked untestable is detected by 2000 random patterns.
    let mut rng = rand::rngs::StdRng::seed_from_u64(7);
    let mut random_set = PatternSet::new();
    for _ in 0..2000 {
        let p = TestPattern::unspecified(n);
        let f = p.fill(n, FillPolicy::Random, &mut rng);
        random_set.push(p, f);
    }
    let random_grade = grade_patterns(n, clka, &faults, &random_set);
    let mut contradictions = 0;
    for (i, status) in run.status.iter().enumerate() {
        if matches!(status, FaultStatus::Untestable) && random_grade.first_detection[i].is_some() {
            contradictions += 1;
        }
    }
    assert_eq!(contradictions, 0, "PODEM untestable verdicts must be sound");
}

/// PODEM immediately recognizes a detecting pattern when fully
/// constrained by it — the detection models of search and simulation are
/// the same.
#[test]
fn podem_recognizes_fault_sim_detections() {
    let s = study();
    let n = &s.design.netlist;
    let clka = s.clka();
    let faults = FaultList::full(n);
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let mut set = PatternSet::new();
    for _ in 0..256 {
        let p = TestPattern::unspecified(n);
        let f = p.fill(n, FillPolicy::Random, &mut rng);
        set.push(p, f);
    }
    let grade = grade_patterns(n, clka, &faults, &set);
    let podem = Podem::new(n, clka, 1);
    let mut checked = 0;
    for (i, det) in grade.first_detection.iter().enumerate() {
        let Some(p) = det else { continue };
        if checked >= 50 {
            break;
        }
        checked += 1;
        let filled = &set.filled[*p];
        let mut pattern = TestPattern {
            load: filled.load.iter().map(|&b| Logic::from(b)).collect(),
            pi: filled.pi.iter().map(|&b| Logic::from(b)).collect(),
        };
        assert_eq!(
            podem.generate(faults.faults()[i], &mut pattern),
            PodemOutcome::Test,
            "fault {:?} detected by simulation must be recognized by PODEM",
            faults.faults()[i]
        );
    }
    assert!(checked >= 50);
}

/// Launch-off-shift ATPG works end to end and its tests are confirmed by
/// the LOS fault simulator; LOS typically reaches *different* (often
/// higher structural) coverage than LOC because the launch state need not
/// be functionally reachable (paper §1.1).
#[test]
fn launch_off_shift_flow_works() {
    let s = study();
    let n = &s.design.netlist;
    let clka = s.clka();
    let faults = FaultList::full(n);
    let config = AtpgConfig {
        mode: LaunchMode::Shift,
        max_patterns: 400,
        ..AtpgConfig::default()
    };
    let gen = Generator::new(n, clka, config);
    let run = gen.run(&faults);
    assert!(
        run.fault_coverage() > 0.3,
        "LOS coverage {:.3} with {} patterns",
        run.fault_coverage(),
        run.patterns.len()
    );
    // Cross-check a sample of detections with a fresh LOS fault sim.
    let fsim = scap::sim::TransitionFaultSim::with_mode(n, clka, LaunchMode::Shift);
    let mut confirmed = 0;
    for (start, batch) in run.patterns.batches().take(2) {
        let summary = fsim.detect_batch(
            &batch.load_words,
            &batch.pi_words,
            batch.valid_mask,
            faults.faults(),
        );
        confirmed += summary.num_detected();
        let _ = start;
    }
    assert!(confirmed > 0);
}

/// The SCAP calculator conserves energy: summing per-block energy plus
/// unattributed (PI-driven) energy equals the chip total, and equals the
/// sum over trace events of C·V².
#[test]
fn scap_energy_conservation() {
    let s = study();
    let n = &s.design.netlist;
    let an = PatternAnalyzer::new(&s);
    let mut rng = rand::rngs::StdRng::seed_from_u64(3);
    let pattern = scap::dft::FilledPattern {
        load: (0..n.num_flops()).map(|_| rng.gen()).collect(),
        pi: (0..n.primary_inputs().len()).map(|_| rng.gen()).collect(),
    };
    let trace = an.trace(&pattern);
    let power = an.power_of_trace(&trace);
    let vdd2 = n.library.vdd * n.library.vdd;
    let direct: f64 = trace
        .events
        .iter()
        .filter(|e| e.rising)
        .map(|e| s.annotation.net_total_cap_ff(e.net) * vdd2)
        .sum();
    assert!(
        (power.chip.energy_vdd_fj - direct).abs() < 1e-6 * direct.max(1.0),
        "chip energy {} vs direct sum {}",
        power.chip.energy_vdd_fj,
        direct
    );
    let block_sum: f64 = power.blocks.iter().map(|b| b.energy_vdd_fj).sum();
    assert!(block_sum <= power.chip.energy_vdd_fj + 1e-9);
}

/// Batch (bit-parallel) and scalar LOC frames agree on the generated SOC.
#[test]
fn batch_and_scalar_loc_frames_agree() {
    let s = study();
    let n = &s.design.netlist;
    let clka = s.clka();
    let scalar = scap::sim::LogicSim::new(n);
    let batch = scap::sim::BatchSim::new(n);
    let mut rng = rand::rngs::StdRng::seed_from_u64(5);
    let loads: Vec<bool> = (0..n.num_flops()).map(|_| rng.gen()).collect();
    let pis: Vec<bool> = (0..n.primary_inputs().len()).map(|_| rng.gen()).collect();
    let sf = scap::sim::loc::loc_frames(
        &scalar,
        &loads.iter().map(|&b| Logic::from(b)).collect::<Vec<_>>(),
        &pis.iter().map(|&b| Logic::from(b)).collect::<Vec<_>>(),
        clka,
    );
    let bf = scap::sim::loc::loc_frames_batch(
        &batch,
        &loads.iter().map(|&b| b as u64).collect::<Vec<_>>(),
        &pis.iter().map(|&b| b as u64).collect::<Vec<_>>(),
        clka,
    );
    for i in 0..n.num_nets() {
        assert_eq!(bf.frame2[i] & 1 == 1, sf.frame2[i] == Logic::One, "net {i}");
    }
}

/// Scan chains shift correctly: loading a value and shifting the full
/// chain length brings the scan-in stream into position.
#[test]
fn scan_shift_round_trip() {
    let s = study();
    let n = &s.design.netlist;
    // One shift moves each cell's value to the next position.
    let loads: Vec<Logic> = (0..n.num_flops())
        .map(|i| Logic::from(i % 3 == 0))
        .collect();
    let shifted = scap::sim::loc::shift_state(n, &loads, Logic::One);
    for f in n.flops() {
        let role = f.scan.expect("full scan");
        if role.position == 0 {
            continue;
        }
        // Find the upstream cell.
        let upstream = n
            .flops()
            .iter()
            .position(|g| {
                g.scan
                    .is_some_and(|r| r.chain == role.chain && r.position == role.position - 1)
            })
            .expect("chain is dense");
        let me = n
            .flops()
            .iter()
            .position(|g| std::ptr::eq(g, f))
            .expect("self");
        assert_eq!(shifted[me], loads[upstream]);
    }
}

/// Doubling a trace's activity doubles every IR-drop (the solve is
/// linear), and the VDD/VSS split follows toggle directions — checked on
/// the real generated design rather than a toy grid.
#[test]
fn ir_drop_scales_linearly_with_activity() {
    use scap::power::DynamicAnalysis;
    use scap::sim::{ToggleEvent, ToggleTrace};
    let s = study();
    let n = &s.design.netlist;
    let dynir = DynamicAnalysis::new(n, &s.design.floorplan, s.grid);
    let net = n.gates()[0].output;
    let mut one = ToggleTrace::default();
    one.events.push(ToggleEvent {
        time_ps: 1000.0,
        net,
        rising: true,
    });
    let mut two = one.clone();
    two.events.push(ToggleEvent {
        time_ps: 500.0,
        net,
        rising: false,
    });
    two.events.push(ToggleEvent {
        time_ps: 1000.0,
        net,
        rising: true,
    });
    two.events
        .sort_by(|a, b| a.time_ps.partial_cmp(&b.time_ps).expect("finite"));
    let m1 = dynir.analyze(&s.annotation, &one);
    let m2 = dynir.analyze(&s.annotation, &two);
    // Trace `two` has 2 rising and 1 falling toggles over the same window.
    let r = m2.worst_drop_vdd() / m1.worst_drop_vdd().max(1e-18);
    assert!((r - 2.0).abs() < 1e-6, "VDD drop ratio {r}");
    assert!(m2.worst_drop_vss() > 0.0);
    assert_eq!(m1.worst_drop_vss(), 0.0);
}

/// The whole pipeline is deterministic: rebuilding the case study and
/// rerunning the flow reproduces identical patterns and coverage.
#[test]
fn end_to_end_determinism() {
    let a = CaseStudy::new(0.004);
    let b = CaseStudy::new(0.004);
    let fa = scap::flows::conventional(&a);
    let fb = scap::flows::conventional(&b);
    assert_eq!(fa.patterns.len(), fb.patterns.len());
    assert_eq!(fa.grade.num_detected(), fb.grade.num_detected());
    for (x, y) in fa.patterns.filled.iter().zip(&fb.patterns.filled) {
        assert_eq!(x, y);
    }
}

/// The pattern batch abstraction covers full 64-pattern blocks and
/// stragglers identically.
#[test]
fn pattern_batches_cover_all_patterns() {
    let s = study();
    let n = &s.design.netlist;
    let mut rng = rand::rngs::StdRng::seed_from_u64(13);
    let mut set = PatternSet::new();
    for _ in 0..70 {
        let p = TestPattern::unspecified(n);
        let f = p.fill(n, FillPolicy::Random, &mut rng);
        set.push(p, f);
    }
    let mut seen = 0;
    for (start, batch) in set.batches() {
        assert_eq!(batch.load_words.len(), n.num_flops());
        seen += batch.count;
        // Every valid bit corresponds to a real pattern.
        assert_eq!(batch.valid_mask.count_ones() as usize, batch.count);
        let _ = start;
    }
    assert_eq!(seen, 70);
    // Packing a single pattern round-trips its bits.
    let one = PatternBatch::pack(std::slice::from_ref(&set.filled[0]));
    for (i, &b) in set.filled[0].load.iter().enumerate() {
        assert_eq!(one.load_words[i] & 1 == 1, b);
    }
}
