//! Parallel-vs-serial bit-identity of the SCAP hot loops.
//!
//! The execution layer (`scap-exec`) promises that every parallel path —
//! per-pattern power profiling, round-parallel fault-sim grading and
//! compaction, per-pattern dynamic IR-drop — returns results
//! **bit-identical** to the serial loop, for any thread count. This
//! binary holds exactly one test so it owns its process: the thread
//! count is selected via the `SCAP_THREADS` environment variable, which
//! is process-global state no concurrently-running test may touch.

use rand::SeedableRng;
use scap::dft::{FillPolicy, PatternSet, TestPattern};
use scap::sim::FaultList;
use scap::{compact_patterns, grade_patterns, CaseStudy, PatternAnalyzer};

struct Snapshot {
    /// (stw, period, chip vdd/vss energy) per pattern, as raw bits.
    power: Vec<[u64; 4]>,
    /// Per-pattern IR-drop node voltages, as raw bits.
    irdrop: Vec<Vec<u64>>,
    first_detection: Vec<Option<usize>>,
    curve: Vec<(usize, usize)>,
    kept: Vec<usize>,
    /// Per-endpoint (flop id, nominal slack, derated slack), slacks as
    /// raw bits, endpoints in report order.
    sta: Vec<(u32, u64, u64)>,
    /// Worst-path endpoints + per-net arrival bits of the derated STA.
    sta_paths: Vec<(u32, Vec<u64>)>,
    /// Per-pattern derated max endpoint delay, as raw bits.
    screen: Vec<u64>,
}

/// Runs every parallelized hot loop on `study` + `set` and captures the
/// results exactly (f64s as bit patterns).
fn snapshot(study: &CaseStudy, faults: &FaultList, set: &PatternSet) -> Snapshot {
    let analyzer = PatternAnalyzer::new(study);
    let power = analyzer
        .power_profile(set)
        .iter()
        .map(|p| {
            [
                p.stw_ps.to_bits(),
                p.period_ps.to_bits(),
                p.chip.energy_vdd_fj.to_bits(),
                p.chip.energy_vss_fj.to_bits(),
            ]
        })
        .collect();
    let irdrop = analyzer
        .ir_drop_profile(&set.filled)
        .iter()
        .map(|m| {
            m.node_drop_vdd_v
                .iter()
                .chain(&m.node_drop_vss_v)
                .map(|v| v.to_bits())
                .collect()
        })
        .collect();
    let n = &study.design.netlist;
    let clka = study.clka();
    let grade = grade_patterns(n, clka, faults, set);
    let (kept, _) = compact_patterns(n, clka, faults, set);
    let noise_sta = scap::sta::NoiseAwareSta::worst_case(study);
    let sta = noise_sta
        .endpoint_slacks()
        .iter()
        .map(|&(f, nom, der)| (f.index() as u32, nom.to_bits(), der.to_bits()))
        .collect();
    let sta_paths = noise_sta
        .derated
        .worst_paths(n, 5)
        .iter()
        .map(|p| {
            (
                p.endpoint.index() as u32,
                p.nets.iter().map(|&(_, a)| a.to_bits()).collect(),
            )
        })
        .collect();
    let screen = scap::sta::TimingScreen::run(study, set, 1.0)
        .max_derated_delay_ps
        .iter()
        .map(|d| d.to_bits())
        .collect();
    Snapshot {
        power,
        irdrop,
        first_detection: grade.first_detection,
        curve: grade.curve,
        kept,
        sta,
        sta_paths,
        screen,
    }
}

#[test]
fn hot_loops_are_bit_identical_across_thread_counts() {
    let study = CaseStudy::small();
    let n = &study.design.netlist;
    let faults = FaultList::full(n);
    let mut rng = rand::rngs::StdRng::seed_from_u64(11);
    let mut set = PatternSet::new();
    for _ in 0..40 {
        let p = TestPattern::unspecified(n);
        let f = p.fill(n, FillPolicy::Random, &mut rng);
        set.push(p, f);
    }

    std::env::set_var("SCAP_THREADS", "1");
    let serial = snapshot(&study, &faults, &set);
    // An even width that divides batches cleanly AND an odd width whose
    // chunk rounding exercises the ragged tail (3 never divides the
    // 64-pattern batches or the power-of-two worker heuristics).
    for threads in ["8", "3"] {
        std::env::set_var("SCAP_THREADS", threads);
        let parallel = snapshot(&study, &faults, &set);
        assert_eq!(
            serial.power, parallel.power,
            "power_profile diverged at {threads} threads"
        );
        assert_eq!(
            serial.irdrop, parallel.irdrop,
            "ir_drop_profile diverged at {threads} threads"
        );
        assert_eq!(
            serial.first_detection, parallel.first_detection,
            "grade_patterns first detections diverged at {threads} threads"
        );
        assert_eq!(
            serial.curve, parallel.curve,
            "coverage curve diverged at {threads} threads"
        );
        assert_eq!(
            serial.kept, parallel.kept,
            "compaction kept-set diverged at {threads} threads"
        );
        assert_eq!(
            serial.sta, parallel.sta,
            "nominal/derated endpoint slacks diverged at {threads} threads"
        );
        assert_eq!(
            serial.sta_paths, parallel.sta_paths,
            "derated worst-path reports diverged at {threads} threads"
        );
        assert_eq!(
            serial.screen, parallel.screen,
            "derated pattern timing screen diverged at {threads} threads"
        );
    }
    std::env::remove_var("SCAP_THREADS");
}
