#!/usr/bin/env bash
# Repository gate: formatting, lints and the full test suite.
#
#   scripts/check.sh            run everything
#   scripts/check.sh --fast     skip the test suite (fmt + clippy only)
#
# The build is fully offline: every third-party dependency is vendored
# under vendor/ (see Cargo.toml), so no registry access is needed.

set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
for arg in "$@"; do
    case "$arg" in
    --fast) fast=1 ;;
    *)
        echo "usage: scripts/check.sh [--fast]" >&2
        exit 2
        ;;
    esac
done

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

if [ "$fast" -eq 0 ]; then
    echo "== cargo test =="
    cargo test --offline --workspace -q

    echo "== determinism at an odd thread count (SCAP_THREADS=3) =="
    SCAP_THREADS=3 cargo test --offline -q -p scap --test determinism

    echo "== scap lint (design-rule check, warnings are errors) =="
    cargo build --offline --release -q -p scap-cli
    ./target/release/scap lint --scale 0.005 --deny warn
    ./target/release/scap lint --scale 0.01 --format json --deny warn | python3 -m json.tool >/dev/null
    echo "lint clean at scales 0.005 and 0.01; JSON output parses."

    echo "== BENCH_evaluation.json is strict JSON =="
    if [ -f BENCH_evaluation.json ]; then
        python3 -m json.tool BENCH_evaluation.json >/dev/null
        echo "BENCH_evaluation.json parses."
    else
        echo "BENCH_evaluation.json not present; skipping."
    fi
fi

echo "All checks passed."
