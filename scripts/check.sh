#!/usr/bin/env bash
# Repository gate: formatting, lints and the full test suite.
#
#   scripts/check.sh            run everything
#   scripts/check.sh --fast     skip the test suite (fmt + clippy only)
#
# The build is fully offline: every third-party dependency is vendored
# under vendor/ (see Cargo.toml), so no registry access is needed.

set -euo pipefail
cd "$(dirname "$0")/.."

fast=0
for arg in "$@"; do
    case "$arg" in
    --fast) fast=1 ;;
    *)
        echo "usage: scripts/check.sh [--fast]" >&2
        exit 2
        ;;
    esac
done

echo "== cargo fmt --check =="
cargo fmt --all -- --check

echo "== cargo clippy (warnings are errors) =="
cargo clippy --offline --workspace --all-targets -- -D warnings

if [ "$fast" -eq 0 ]; then
    echo "== cargo test =="
    cargo test --offline --workspace -q

    echo "== determinism at an odd thread count (SCAP_THREADS=3) =="
    SCAP_THREADS=3 cargo test --offline -q -p scap --test determinism

    echo "== scap lint (design-rule check, warnings are errors) =="
    cargo build --offline --release -q -p scap-cli
    ./target/release/scap lint --scale 0.005 --deny warn
    ./target/release/scap lint --scale 0.01 --format json --deny warn | python3 -m json.tool >/dev/null
    ./target/release/scap lint --scale 0.005 --only TIM --deny warn
    if ./target/release/scap lint --scale 0.005 --only ZZZ 2>/dev/null; then
        echo "expected --only with an unknown rule prefix to fail" >&2
        exit 1
    fi
    echo "lint clean at scales 0.005 and 0.01; JSON output parses; --only filter works."

    echo "== sta smoke (derated slack analysis, sta.* counters engaged) =="
    sta_out=$(./target/release/scap sta --scale 0.004 --derate --metrics)
    for counter in sta.runs sta.derated_runs sta.endpoints; do
        val=$(printf '%s\n' "$sta_out" | awk -v c="$counter" '$1 == c { print $2 }')
        if [ -z "${val:-}" ] || [ "$val" -eq 0 ]; then
            echo "expected $counter > 0 in scap sta --metrics output" >&2
            exit 1
        fi
        echo "  $counter = $val"
    done
    derated_lines=$(printf '%s\n' "$sta_out" | grep -c "derated" || true)
    if [ "$derated_lines" -eq 0 ]; then
        echo "expected at least one derated-slack line in scap sta --derate output" >&2
        exit 1
    fi
    printf '%s\n' "$sta_out" | grep -q "fault risk tiers:" || {
        echo "expected a fault risk tier histogram in scap sta --derate output" >&2
        exit 1
    }
    echo "sta smoke passed."

    echo "== fault-sim kernel smoke (pruning/collapsing/sharding/block kernel engaged) =="
    prof=$(./target/release/scap profile --scale 0.004 --metrics)
    for counter in sim.faults_skipped_unobservable sim.faults_collapsed grade.fault_shards \
        sim.block_evals sim.patterns_per_block; do
        val=$(printf '%s\n' "$prof" | awk -v c="$counter" '$1 == c { print $2 }')
        if [ -z "${val:-}" ] || [ "$val" -eq 0 ]; then
            echo "expected $counter > 0 in scap profile --metrics output" >&2
            exit 1
        fi
        echo "  $counter = $val"
    done
    printf '%s\n' "$prof" | grep -q "block kernel utilization:" || {
        echo "expected a block kernel utilization line in scap profile --metrics output" >&2
        exit 1
    }
    echo "fault-sim kernel smoke passed."

    echo "== hybrid engine smoke (SAT settles PODEM aborts) =="
    hprof=$(./target/release/scap profile --scale 0.008 --flow conventional --engine hybrid --metrics)
    recl=$(printf '%s\n' "$hprof" | awk '$1 == "atpg.reclassified_untestable" { print $2 }')
    solves=$(printf '%s\n' "$hprof" | awk '$1 == "sat.solves" { print $2 }')
    if [ -z "${recl:-}" ] || [ "$recl" -eq 0 ]; then
        echo "expected >= 1 abort reclassified Untestable (atpg.reclassified_untestable) under --engine hybrid" >&2
        exit 1
    fi
    echo "  atpg.reclassified_untestable = $recl (sat.solves = ${solves:-0})"
    echo "hybrid engine smoke passed: aborts are proven untestable, not left hanging."

    echo "== scap serve smoke (ephemeral port, loadgen burst, clean drain) =="
    cargo build --offline --release -q -p scap-serve
    serve_log=$(mktemp)
    ./target/release/scap serve --addr 127.0.0.1:0 --workers 2 --queue-depth 8 \
        >"$serve_log" 2>&1 &
    serve_pid=$!
    trap 'kill "$serve_pid" 2>/dev/null || true; rm -f "$serve_log"' EXIT
    serve_addr=""
    for _ in $(seq 1 100); do
        serve_addr=$(sed -n 's#^scap serve listening on http://##p' "$serve_log")
        [ -n "$serve_addr" ] && break
        sleep 0.1
    done
    [ -n "$serve_addr" ] || { echo "server never printed its address" >&2; cat "$serve_log" >&2; exit 1; }
    ./target/release/scap-loadgen --addr "$serve_addr" --path /healthz --concurrency 4 --requests 2
    ./target/release/scap-loadgen --addr "$serve_addr" --path /v1/design \
        --query "scale=0.004" --concurrency 4 --requests 2
    # Strict-JSON validation of both inline and pooled endpoint bodies.
    python3 - "$serve_addr" <<'PY'
import json, sys, urllib.request
addr = sys.argv[1]
for path in ("/healthz", "/metrics", "/v1/design?scale=0.004"):
    with urllib.request.urlopen(f"http://{addr}{path}") as r:
        json.loads(r.read())
req = urllib.request.Request(f"http://{addr}/v1/shutdown", data=b"", method="POST")
with urllib.request.urlopen(req) as r:
    assert json.loads(r.read())["shutting_down"] is True
PY
    wait "$serve_pid"   # graceful drain must exit 0
    trap - EXIT
    rm -f "$serve_log"
    echo "serve smoke passed: bursts answered, JSON strict, drained cleanly."

    echo "== scap cluster smoke (2 workers, SIGKILL mid-burst, aggregated metrics, clean drain) =="
    cluster_log=$(mktemp)
    ./target/release/scap cluster --port 0 --workers 2 --probe-ms 2000 \
        >"$cluster_log" 2>&1 &
    cluster_pid=$!
    trap 'kill "$cluster_pid" 2>/dev/null || true; rm -f "$cluster_log"' EXIT
    cluster_addr=""
    for _ in $(seq 1 100); do
        cluster_addr=$(sed -n 's#^scap cluster listening on http://\([^ ]*\).*#\1#p' "$cluster_log")
        [ -n "$cluster_addr" ] && break
        sleep 0.1
    done
    [ -n "$cluster_addr" ] || { echo "coordinator never printed its address" >&2; cat "$cluster_log" >&2; exit 1; }
    mapfile -t worker_pids < <(sed -n 's#^scap cluster worker [0-9]* pid \([0-9]*\) .*#\1#p' "$cluster_log")
    [ "${#worker_pids[@]}" -eq 2 ] || { echo "expected 2 worker pid lines" >&2; cat "$cluster_log" >&2; exit 1; }
    # Warm every shard, then SIGKILL one worker while a burst is in
    # flight: the coordinator must fail over and every client request
    # must still answer 200 (that's what --require-200 enforces).
    # 16 seeds so the consistent-hash ring provably spreads the key set
    # over both workers — killing either one cuts into the burst.
    ./target/release/scap-loadgen --addr "$cluster_addr" --method POST --path /v1/profile \
        --body "scale=0.004" --seeds 16 --concurrency 16 --requests 1 --require-200
    ./target/release/scap-loadgen --addr "$cluster_addr" --method POST --path /v1/profile \
        --body "scale=0.004" --seeds 16 --concurrency 4 --requests 200 --require-200 &
    burst_pid=$!
    sleep 0.15
    kill -9 "${worker_pids[0]}"
    wait "$burst_pid" || { echo "burst through the worker kill lost requests" >&2; cat "$cluster_log" >&2; exit 1; }
    # One more full rotation over every shard key: even if the big
    # burst finished before the kill landed, these requests must hit
    # the dead worker's range and fail over — the reroute counters
    # below are asserted deterministically, not on a race.
    ./target/release/scap-loadgen --addr "$cluster_addr" --method POST --path /v1/profile \
        --body "scale=0.004" --seeds 16 --concurrency 16 --requests 1 --require-200
    # The aggregated /metrics must be strict JSON, carry the fleet
    # object, and prove the failover path actually ran.
    python3 - "$cluster_addr" <<'PY'
import json, sys, urllib.request
addr = sys.argv[1]
with urllib.request.urlopen(f"http://{addr}/metrics") as r:
    doc = json.loads(r.read())
counters = doc["counters"]
assert counters["cluster.route.requests"] > 0, "no routed requests"
assert counters["cluster.failover.reroutes"] > 0, "the killed worker was never failed over"
assert counters["serve.requests"] > 0, "worker counters missing from the aggregate"
cluster = doc["cluster"]
assert cluster["workers_total"] == 2, cluster
assert len(cluster["per_worker"]) == 2, cluster
req = urllib.request.Request(f"http://{addr}/v1/shutdown", data=b"", method="POST")
with urllib.request.urlopen(req) as r:
    assert json.loads(r.read())["shutting_down"] is True
PY
    wait "$cluster_pid"   # fleet drain must exit 0
    trap - EXIT
    rm -f "$cluster_log"
    echo "cluster smoke passed: failover covered the kill, metrics aggregated, drained cleanly."

    echo "== BENCH_evaluation.json is strict JSON =="
    if [ -f BENCH_evaluation.json ]; then
        python3 - <<'PY'
import json
doc = json.load(open("BENCH_evaluation.json"))
stages = [s for s in doc["stages"] if "fault_sim_checks_per_sec" in s]
assert stages, "no stage carries fault_sim_checks_per_sec"
for s in stages:
    assert s["fault_sim_checks_per_sec"] > 0, f"zero throughput in {s['name']}"
totals = doc["totals"]
for c in ("sat.solves", "sat.conflicts", "atpg.reclassified_untestable",
          "sta.runs", "sta.derated_runs", "sta.screen.patterns", "sta.screen.invalidated"):
    assert totals.get(c, 0) > 0, f"expected {c} > 0 in totals"
by_name = {s["name"]: s for s in doc["stages"]}
rps = {w: by_name[f"cluster_profile_{w}w"]["requests_per_sec"] for w in (1, 2, 4)}
assert rps[2] / rps[1] >= 1.7, f"1->2 worker scaling below 1.7x: {rps}"
assert rps[4] / rps[1] >= 3.0, f"1->4 worker scaling below 3.0x: {rps}"
print(f"cluster scaling: 1w {rps[1]:.1f} -> 2w {rps[2]:.1f} ({rps[2]/rps[1]:.1f}x) "
      f"-> 4w {rps[4]:.1f} ({rps[4]/rps[1]:.1f}x) req/s")
PY
        echo "BENCH_evaluation.json parses; fault-sim, SAT, STA and cluster-scaling numbers carried."
    else
        echo "BENCH_evaluation.json not present; skipping."
    fi
fi

echo "All checks passed."
