//! No-op `Serialize`/`Deserialize` derives for the vendored serde stub.
//!
//! The stub `serde` crate blanket-implements its marker traits, so the
//! derives have nothing to emit; they exist only so that
//! `#[derive(Serialize, Deserialize)]` (and any `#[serde(...)]` helper
//! attributes) parse exactly as with the real crates.

use proc_macro::TokenStream;

#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}

#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_item: TokenStream) -> TokenStream {
    TokenStream::new()
}
