//! Vendored minimal benchmark harness with the `criterion` API surface
//! this workspace uses.
//!
//! The build environment has no crates-io access, so the real `criterion`
//! cannot be fetched. This stand-in keeps `benches/` compiling and
//! produces honest wall-clock numbers: each `bench_function` runs a short
//! warm-up, then `sample_size` timed samples, and prints the per-iteration
//! median, minimum, and maximum. There are no statistical refinements,
//! plots, or baselines.

use std::time::{Duration, Instant};

/// Opaque value barrier: prevents the optimizer from deleting benchmark
/// bodies whose results are unused.
pub fn black_box<T>(value: T) -> T {
    std::hint::black_box(value)
}

/// Per-iteration timer handed to benchmark closures.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Times `iters` calls of `routine`.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// The top-level harness: dispenses benchmark groups.
pub struct Criterion {
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        // Mirror criterion's CLI just enough for `cargo bench -- <filter>`;
        // flags (e.g. `--bench`, which cargo passes) are ignored.
        let filter = std::env::args()
            .skip(1)
            .find(|a| !a.starts_with('-'))
            .filter(|a| !a.is_empty());
        Criterion { filter }
    }
}

impl Criterion {
    /// Applies the configuration (no-op: kept for API compatibility).
    pub fn configure_from_args(self) -> Self {
        self
    }

    /// Starts a named group of benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            sample_size: 100,
        }
    }

    /// Runs a standalone benchmark (group of one).
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, f: F) -> &mut Self {
        let mut group = self.benchmark_group("");
        group.bench_function(id, f);
        group.finish();
        self
    }
}

/// A named set of benchmarks sharing a sample size.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Sets the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Runs one benchmark and prints its per-iteration timings.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: &str, mut f: F) -> &mut Self {
        let full_id = if self.name.is_empty() {
            id.to_string()
        } else {
            format!("{}/{}", self.name, id)
        };
        if let Some(filter) = &self.criterion.filter {
            if !full_id.contains(filter.as_str()) {
                return self;
            }
        }

        // Warm-up: find an iteration count that makes one sample take
        // roughly 10ms, so cheap kernels still get a stable reading.
        let mut iters = 1u64;
        loop {
            let mut b = Bencher {
                iters,
                elapsed: Duration::ZERO,
            };
            f(&mut b);
            if b.elapsed >= Duration::from_millis(10) || iters >= 1 << 20 {
                break;
            }
            iters *= 2;
        }

        let mut per_iter_ns: Vec<f64> = (0..self.sample_size)
            .map(|_| {
                let mut b = Bencher {
                    iters,
                    elapsed: Duration::ZERO,
                };
                f(&mut b);
                b.elapsed.as_nanos() as f64 / iters as f64
            })
            .collect();
        per_iter_ns.sort_by(|a, b| a.total_cmp(b));
        let median = per_iter_ns[per_iter_ns.len() / 2];
        let min = per_iter_ns[0];
        let max = per_iter_ns[per_iter_ns.len() - 1];
        println!(
            "{full_id:<40} median {:>12} (min {}, max {}, {} samples x {} iters)",
            format_ns(median),
            format_ns(min),
            format_ns(max),
            self.sample_size,
            iters,
        );
        self
    }

    /// Ends the group (no-op: kept for API compatibility).
    pub fn finish(&mut self) {}
}

fn format_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.3} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.3} us", ns / 1e3)
    } else {
        format!("{ns:.1} ns")
    }
}

/// Collects benchmark functions into a runnable group.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut criterion = $crate::Criterion::default().configure_from_args();
            $($target(&mut criterion);)+
        }
    };
}

/// Emits `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_iterations() {
        let mut b = Bencher {
            iters: 10,
            elapsed: Duration::ZERO,
        };
        let mut count = 0u64;
        b.iter(|| count += 1);
        assert_eq!(count, 10);
    }

    #[test]
    fn groups_run_and_filter() {
        let mut c = Criterion { filter: None };
        let mut ran = 0;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(2);
            g.bench_function("a", |b| b.iter(|| ran += 1));
            g.finish();
        }
        assert!(ran > 0);

        let mut c = Criterion {
            filter: Some("nomatch".into()),
        };
        let mut skipped_ran = false;
        let mut g = c.benchmark_group("g");
        g.bench_function("a", |b| b.iter(|| skipped_ran = true));
        g.finish();
        assert!(!skipped_ran);
    }

    #[test]
    fn ns_formatting_picks_units() {
        assert_eq!(format_ns(12.0), "12.0 ns");
        assert_eq!(format_ns(1.2e4), "12.000 us");
        assert_eq!(format_ns(1.2e7), "12.000 ms");
        assert_eq!(format_ns(1.2e10), "12.000 s");
    }
}
