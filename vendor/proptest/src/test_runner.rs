//! The per-test runner: configuration, RNG, and failure type.

use rand::rngs::StdRng;
use rand::SeedableRng;
use std::fmt;

/// Test-run configuration (`ProptestConfig` in the prelude).
#[derive(Clone, Copy, Debug)]
pub struct Config {
    /// Number of generated cases per test.
    pub cases: u32,
}

impl Config {
    /// A config running `cases` cases per test.
    pub fn with_cases(cases: u32) -> Self {
        Config { cases }
    }
}

impl Default for Config {
    fn default() -> Self {
        Config { cases: 256 }
    }
}

/// A failed case, produced by the `prop_assert*` macros.
#[derive(Clone, Debug)]
pub struct TestCaseError(String);

impl TestCaseError {
    /// Fails the case with `reason`.
    pub fn fail(reason: impl Into<String>) -> Self {
        TestCaseError(reason.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Drives one property test: owns the config and the deterministic RNG
/// the strategies draw from.
pub struct TestRunner {
    /// The active configuration.
    pub config: Config,
    rng: StdRng,
}

impl TestRunner {
    /// A runner with the given config and RNG seed.
    pub fn new(config: Config, seed: u64) -> Self {
        TestRunner {
            config,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// The RNG strategies should draw from.
    pub fn rng(&mut self) -> &mut StdRng {
        &mut self.rng
    }
}
