//! Value-generation strategies: ranges, tuples, `any`, `prop_map`.

use rand::distributions::{Distribution, Standard};
use rand::rngs::StdRng;
use rand::Rng;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// A recipe for generating values of `Self::Value`.
///
/// Unlike the real proptest there is no value tree and no shrinking: a
/// strategy is just a deterministic function of the runner's RNG state.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Generates one value.
    fn new_value(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Copy, Debug)]
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S, O, F> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn new_value(&self, rng: &mut StdRng) -> O {
        (self.f)(self.source.new_value(rng))
    }
}

/// Strategy producing the same value every time.
#[derive(Clone, Copy, Debug)]
pub struct Just<T>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn new_value(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// Strategy drawing from a type's [`Standard`] distribution.
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<fn() -> T>);

/// Generates arbitrary values of `T` (full integer range, `[0, 1)`
/// floats, fair bools).
pub fn any<T>() -> Any<T>
where
    Standard: Distribution<T>,
{
    Any(PhantomData)
}

impl<T> Strategy for Any<T>
where
    Standard: Distribution<T>,
{
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.sample(Standard)
    }
}

impl<T> Strategy for Range<T>
where
    T: rand::SampleUniform + PartialOrd + Clone,
{
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

impl<T> Strategy for RangeInclusive<T>
where
    T: rand::SampleUniform + PartialOrd + Clone,
{
    type Value = T;

    fn new_value(&self, rng: &mut StdRng) -> T {
        rng.gen_range(self.clone())
    }
}

macro_rules! tuple_strategy_impl {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn new_value(&self, rng: &mut StdRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.new_value(rng),)+)
            }
        }
    };
}

tuple_strategy_impl! { A }
tuple_strategy_impl! { A, B }
tuple_strategy_impl! { A, B, C }
tuple_strategy_impl! { A, B, C, D }
tuple_strategy_impl! { A, B, C, D, E }
tuple_strategy_impl! { A, B, C, D, E, F }

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    #[test]
    fn strategies_are_deterministic_given_rng_state() {
        let strat = (0usize..100, any::<u64>()).prop_map(|(a, b)| a as u64 + (b & 1));
        let mut r1 = StdRng::seed_from_u64(9);
        let mut r2 = StdRng::seed_from_u64(9);
        for _ in 0..50 {
            assert_eq!(strat.new_value(&mut r1), strat.new_value(&mut r2));
        }
    }

    #[test]
    fn just_returns_its_value() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(Just(41).new_value(&mut rng), 41);
    }
}
