//! Vendored, dependency-free reimplementation of the `proptest` API
//! surface used by this workspace.
//!
//! The build environment has no crates-io access, so the real `proptest`
//! cannot be fetched. This crate provides the subset the workspace's
//! property tests exercise: the [`prelude::Strategy`] trait (ranges,
//! tuples, `any`, `prop_map`), the [`proptest!`] test macro with
//! `#![proptest_config(...)]`, and the `prop_assert*` macros.
//!
//! Unlike the real crate there is no shrinking and no persisted failure
//! seeds: each test runs `cases` deterministic cases seeded from the test
//! name, and the first failing case panics with its case index and the
//! generated inputs' debug seed.

pub mod strategy;
pub mod test_runner;

pub mod prelude {
    //! Everything the `proptest!` tests need in scope.

    pub use crate::strategy::{any, Any, Just, Map, Strategy};
    pub use crate::test_runner::{Config as ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, proptest};
}

/// Deterministic per-test seed: FNV-1a over the test name, so every run
/// (and every thread count) replays the identical case sequence.
pub fn seed_from_name(name: &str) -> u64 {
    let mut hash = 0xcbf2_9ce4_8422_2325u64;
    for byte in name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Fails the current proptest case with a message.
///
/// Expands to an early `Err` return, so it is only valid inside a
/// [`proptest!`] body (which runs in a `Result`-returning closure).
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, concat!("assertion failed: ", stringify!($cond)))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !$cond {
            return ::core::result::Result::Err($crate::test_runner::TestCaseError::fail(
                format!($($fmt)*),
            ));
        }
    };
}

/// `prop_assert!` for equality, with optional custom message.
#[macro_export]
macro_rules! prop_assert_eq {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left == right,
            "assertion failed: `{:?}` == `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left == right, $($fmt)*);
    }};
}

/// `prop_assert!` for inequality, with optional custom message.
#[macro_export]
macro_rules! prop_assert_ne {
    ($left:expr, $right:expr) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(
            left != right,
            "assertion failed: `{:?}` != `{:?}`",
            left,
            right
        );
    }};
    ($left:expr, $right:expr, $($fmt:tt)*) => {{
        let (left, right) = (&$left, &$right);
        $crate::prop_assert!(left != right, $($fmt)*);
    }};
}

/// Declares property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` that runs the body over `config.cases` generated
/// inputs.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!($crate::test_runner::Config::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ($cfg:expr; $(
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
    )*) => {
        $(
            $(#[$meta])*
            fn $name() {
                let config: $crate::test_runner::Config = $cfg;
                let mut runner = $crate::test_runner::TestRunner::new(
                    config,
                    $crate::seed_from_name(concat!(module_path!(), "::", stringify!($name))),
                );
                for case in 0..runner.config.cases {
                    $(
                        let $arg =
                            $crate::strategy::Strategy::new_value(&($strat), runner.rng());
                    )+
                    let outcome: ::core::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::core::result::Result::Ok(())
                        })();
                    if let ::core::result::Result::Err(err) = outcome {
                        panic!(
                            "proptest {} failed at case {}/{}: {}",
                            stringify!($name),
                            case,
                            runner.config.cases,
                            err
                        );
                    }
                }
            }
        )*
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_pair(limit: usize) -> impl Strategy<Value = (usize, usize)> {
        (0usize..limit, any::<u64>()).prop_map(|(a, seed)| (a, (seed % 7) as usize))
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..9, f in 1.0f64..2.0) {
            prop_assert!((3..9).contains(&x));
            prop_assert!((1.0..2.0).contains(&f), "f = {}", f);
        }

        #[test]
        fn mapped_tuples_work(pair in arb_pair(10), flag in any::<bool>()) {
            let (a, b) = pair;
            prop_assert!(a < 10);
            prop_assert!(b < 7);
            prop_assert_eq!(flag, flag);
        }
    }

    #[test]
    fn cases_are_deterministic_per_name() {
        assert_eq!(crate::seed_from_name("x"), crate::seed_from_name("x"));
        assert_ne!(crate::seed_from_name("x"), crate::seed_from_name("y"));
    }

    #[test]
    #[should_panic(expected = "failed at case")]
    fn failures_panic_with_case_index() {
        proptest! {
            fn always_fails(x in 0usize..4) {
                prop_assert!(x > 100, "x = {}", x);
            }
        }
        always_fails();
    }
}
