//! The generators: `StdRng`/`SmallRng` (ChaCha12) and the mock `StepRng`.

use crate::{RngCore, SeedableRng};

const CHACHA_BLOCK_WORDS: usize = 16;
/// `rand_chacha` buffers 4 ChaCha blocks (64 `u32` words) per refill.
const BUFFER_WORDS: usize = 4 * CHACHA_BLOCK_WORDS;

/// ChaCha block function with a configurable double-round count.
///
/// State layout (RFC 8439 with a 64-bit counter, as in `rand_chacha`):
/// constants ‖ key (8 words) ‖ counter (2 words, LE) ‖ stream (2 words).
fn chacha_block(key: &[u32; 8], counter: u64, stream: [u32; 2], double_rounds: u32) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[0] = 0x6170_7865;
    state[1] = 0x3320_646e;
    state[2] = 0x7962_2d32;
    state[3] = 0x6b20_6574;
    state[4..12].copy_from_slice(key);
    state[12] = counter as u32;
    state[13] = (counter >> 32) as u32;
    state[14] = stream[0];
    state[15] = stream[1];
    let mut w = state;
    #[inline(always)]
    fn quarter(w: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
        w[a] = w[a].wrapping_add(w[b]);
        w[d] = (w[d] ^ w[a]).rotate_left(16);
        w[c] = w[c].wrapping_add(w[d]);
        w[b] = (w[b] ^ w[c]).rotate_left(12);
        w[a] = w[a].wrapping_add(w[b]);
        w[d] = (w[d] ^ w[a]).rotate_left(8);
        w[c] = w[c].wrapping_add(w[d]);
        w[b] = (w[b] ^ w[c]).rotate_left(7);
    }
    for _ in 0..double_rounds {
        quarter(&mut w, 0, 4, 8, 12);
        quarter(&mut w, 1, 5, 9, 13);
        quarter(&mut w, 2, 6, 10, 14);
        quarter(&mut w, 3, 7, 11, 15);
        quarter(&mut w, 0, 5, 10, 15);
        quarter(&mut w, 1, 6, 11, 12);
        quarter(&mut w, 2, 7, 8, 13);
        quarter(&mut w, 3, 4, 9, 14);
    }
    for (wi, si) in w.iter_mut().zip(&state) {
        *wi = wi.wrapping_add(*si);
    }
    w
}

/// ChaCha12-based generator with `rand_core::BlockRng` buffering, so the
/// output word stream (and the `next_u32`/`next_u64` interleaving rules)
/// match `rand 0.8`'s `StdRng` exactly.
#[derive(Clone, Debug)]
pub struct ChaCha12Rng {
    key: [u32; 8],
    stream: [u32; 2],
    counter: u64,
    results: [u32; BUFFER_WORDS],
    /// Next unread index into `results`; `BUFFER_WORDS` means empty.
    index: usize,
}

impl ChaCha12Rng {
    fn refill(&mut self) {
        for block in 0..4 {
            let words = chacha_block(&self.key, self.counter + block as u64, self.stream, 6);
            self.results[block * CHACHA_BLOCK_WORDS..(block + 1) * CHACHA_BLOCK_WORDS]
                .copy_from_slice(&words);
        }
        self.counter += 4;
    }

    fn generate_and_set(&mut self, index: usize) {
        self.refill();
        self.index = index;
    }
}

impl SeedableRng for ChaCha12Rng {
    type Seed = [u8; 32];

    fn from_seed(seed: [u8; 32]) -> Self {
        let mut key = [0u32; 8];
        for (k, chunk) in key.iter_mut().zip(seed.chunks_exact(4)) {
            *k = u32::from_le_bytes(chunk.try_into().expect("4-byte chunk"));
        }
        ChaCha12Rng {
            key,
            stream: [0, 0],
            counter: 0,
            results: [0; BUFFER_WORDS],
            index: BUFFER_WORDS,
        }
    }
}

impl RngCore for ChaCha12Rng {
    fn next_u32(&mut self) -> u32 {
        if self.index >= BUFFER_WORDS {
            self.generate_and_set(0);
        }
        let value = self.results[self.index];
        self.index += 1;
        value
    }

    fn next_u64(&mut self) -> u64 {
        let read_u64 =
            |results: &[u32], i: usize| u64::from(results[i + 1]) << 32 | u64::from(results[i]);
        let index = self.index;
        if index < BUFFER_WORDS - 1 {
            self.index += 2;
            read_u64(&self.results, index)
        } else if index >= BUFFER_WORDS {
            self.generate_and_set(2);
            read_u64(&self.results, 0)
        } else {
            // One word left: combine it with the first word of the next
            // buffer (rand_core's BlockRng straddling rule).
            let lo = u64::from(self.results[BUFFER_WORDS - 1]);
            self.generate_and_set(1);
            let hi = u64::from(self.results[0]);
            (hi << 32) | lo
        }
    }
}

/// The standard generator: ChaCha12, as in `rand 0.8`.
pub type StdRng = ChaCha12Rng;

/// A small fast generator. The real crate uses xoshiro; here it shares the
/// ChaCha12 core (no workspace code depends on `SmallRng` streams).
pub type SmallRng = ChaCha12Rng;

pub mod mock {
    //! Mock generators for deterministic tests.

    use crate::RngCore;

    /// Returns `initial`, then adds `increment` per call (wrapping).
    #[derive(Clone, Debug)]
    pub struct StepRng {
        v: u64,
        a: u64,
    }

    impl StepRng {
        /// Creates a generator starting at `initial` stepping by
        /// `increment`.
        pub fn new(initial: u64, increment: u64) -> Self {
            StepRng {
                v: initial,
                a: increment,
            }
        }
    }

    impl RngCore for StepRng {
        fn next_u32(&mut self) -> u32 {
            self.next_u64() as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.v;
            self.v = self.v.wrapping_add(self.a);
            result
        }
    }
}
