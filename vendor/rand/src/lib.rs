//! Vendored, dependency-free reimplementation of the `rand 0.8` API
//! surface used by this workspace.
//!
//! The build environment has no network access and no crates-io mirror, so
//! the real `rand` crate (and its `rand_core`/`rand_chacha` dependencies)
//! cannot be fetched. This crate reimplements, bit-compatibly, exactly the
//! paths the workspace exercises:
//!
//! * [`rngs::StdRng`] — ChaCha12 with the `rand_core` block-buffer
//!   semantics and the PCG-based [`SeedableRng::seed_from_u64`] expansion,
//!   so seeded streams match the real `rand 0.8.5` word for word.
//! * [`Rng::gen_range`] — Lemire widening-multiply rejection sampling for
//!   integers, the `[1, 2)` mantissa trick for floats.
//! * [`Rng::gen`] via [`distributions::Standard`], [`Rng::gen_bool`] via
//!   the Bernoulli 64-bit integer comparison.
//! * [`rngs::mock::StepRng`] for deterministic unit tests.
//!
//! Anything the workspace does not use is deliberately absent.

pub mod distributions;
pub mod rngs;

pub use distributions::uniform::{SampleRange, SampleUniform};
pub use distributions::{Distribution, Standard};

/// The core of a random number generator: a source of `u32`/`u64` words.
pub trait RngCore {
    /// Returns the next random `u32`.
    fn next_u32(&mut self) -> u32;
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(4);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u32().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let word = self.next_u32().to_le_bytes();
            rem.copy_from_slice(&word[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// A generator seedable from a fixed-size byte seed or a `u64`.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Builds the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Expands a `u64` into a full seed with the PCG32 stream used by
    /// `rand_core 0.6`, then seeds the generator. Streams match the real
    /// `rand` crate exactly.
    fn seed_from_u64(mut state: u64) -> Self {
        const MUL: u64 = 6364136223846793005;
        const INC: u64 = 11634580027462260723;
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            state = state.wrapping_mul(MUL).wrapping_add(INC);
            let xorshifted = (((state >> 18) ^ state) >> 27) as u32;
            let rot = (state >> 59) as u32;
            let word = xorshifted.rotate_right(rot).to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// User-facing convenience methods over any [`RngCore`].
pub trait Rng: RngCore {
    /// Samples a value of type `T` from the [`Standard`] distribution.
    fn gen<T>(&mut self) -> T
    where
        Standard: Distribution<T>,
    {
        Standard.sample(self)
    }

    /// Samples a value uniformly from a range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        T: SampleUniform,
        R: SampleRange<T>,
    {
        assert!(!range.is_empty(), "cannot sample empty range");
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 ≤ p ≤ 1`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} is outside [0, 1]");
        if p == 1.0 {
            return true;
        }
        // Bernoulli via 64-bit integer comparison (rand 0.8 semantics).
        const SCALE: f64 = 2.0 * (1u64 << 63) as f64;
        let p_int = (p * SCALE) as u64;
        self.next_u64() < p_int
    }

    /// Samples from an explicit distribution.
    fn sample<T, D: Distribution<T>>(&mut self, distr: D) -> T {
        distr.sample(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rngs::mock::StepRng;
    use crate::rngs::StdRng;

    #[test]
    fn seeded_streams_are_deterministic() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn mixed_u32_u64_draws_stay_deterministic() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for i in 0..200 {
            if i % 3 == 0 {
                assert_eq!(a.next_u32(), b.next_u32());
            } else {
                assert_eq!(a.next_u64(), b.next_u64());
            }
        }
    }

    #[test]
    fn gen_range_is_in_bounds_and_covers() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut seen = [false; 5];
        for _ in 0..200 {
            let v = rng.gen_range(0..5usize);
            seen[v] = true;
        }
        assert!(seen.iter().all(|&s| s), "{seen:?}");
        for _ in 0..200 {
            let f = rng.gen_range(2.0f64..3.0);
            assert!((2.0..3.0).contains(&f));
        }
        for _ in 0..100 {
            let i = rng.gen_range(-3i32..3);
            assert!((-3..3).contains(&i));
        }
    }

    #[test]
    fn gen_bool_tracks_probability() {
        let mut rng = StdRng::seed_from_u64(2);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
        assert!(rng.gen_bool(1.0));
        assert!(!rng.gen_bool(0.0));
    }

    #[test]
    fn standard_f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..1000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
        }
    }

    #[test]
    fn step_rng_steps() {
        let mut r = StepRng::new(10, 5);
        assert_eq!(r.next_u64(), 10);
        assert_eq!(r.next_u64(), 15);
        assert_eq!(r.next_u64(), 20);
    }

    #[test]
    fn bool_uses_msb_of_u32() {
        let mut hi = StepRng::new(0x8000_0000, 0);
        assert!(hi.gen::<bool>());
        let mut lo = StepRng::new(0x7FFF_FFFF, 0);
        assert!(!lo.gen::<bool>());
    }

    /// Known-answer check of the seed expansion: the PCG stream for
    /// `seed_from_u64` is fully determined by the constants, so the first
    /// word of the expansion must be stable across refactors.
    #[test]
    fn seed_expansion_is_stable() {
        struct Capture([u8; 32]);
        impl SeedableRng for Capture {
            type Seed = [u8; 32];
            fn from_seed(seed: [u8; 32]) -> Self {
                Capture(seed)
            }
        }
        let a = Capture::seed_from_u64(0).0;
        let b = Capture::seed_from_u64(0).0;
        assert_eq!(a, b);
        assert_ne!(a, [0u8; 32]);
    }
}
