//! The `Standard` distribution and uniform range sampling, matching
//! `rand 0.8.5`'s stream consumption exactly.

use crate::{Rng, RngCore};

/// A distribution over values of type `T`.
pub trait Distribution<T> {
    /// Draws one sample.
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> T;
}

/// The "natural" distribution of a type: full-range integers, `[0, 1)`
/// floats, fair bools.
#[derive(Clone, Copy, Debug, Default)]
pub struct Standard;

impl Distribution<u8> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u8 {
        rng.next_u32() as u8
    }
}

impl Distribution<u16> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u16 {
        rng.next_u32() as u16
    }
}

impl Distribution<u32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u32 {
        rng.next_u32()
    }
}

impl Distribution<u64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> u64 {
        rng.next_u64()
    }
}

impl Distribution<usize> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> usize {
        rng.next_u64() as usize
    }
}

impl Distribution<i32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i32 {
        rng.next_u32() as i32
    }
}

impl Distribution<i64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> i64 {
        rng.next_u64() as i64
    }
}

impl Distribution<bool> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> bool {
        // rand 0.8 compares the most significant bit of a u32.
        rng.next_u32() & (1 << 31) != 0
    }
}

impl Distribution<f32> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f32 {
        // 24-bit precision multiply into [0, 1).
        let value = rng.next_u32() >> 8;
        value as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Distribution<f64> for Standard {
    fn sample<R: RngCore + ?Sized>(&self, rng: &mut R) -> f64 {
        // 53-bit precision multiply into [0, 1).
        let value = rng.next_u64() >> 11;
        value as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

pub mod uniform {
    //! Uniform range sampling (`Rng::gen_range`).

    use super::*;
    use std::ops::{Range, RangeInclusive};

    /// Types that `gen_range` can sample.
    pub trait SampleUniform: Sized {
        /// Uniform sample from `[low, high)`.
        fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self;
        /// Uniform sample from `[low, high]`.
        fn sample_single_inclusive<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R)
            -> Self;
    }

    /// Range arguments accepted by `gen_range`.
    pub trait SampleRange<T> {
        /// Draws one sample from the range.
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
        /// Whether the range contains no values.
        fn is_empty(&self) -> bool;
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for Range<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            T::sample_single(self.start, self.end, rng)
        }
        // Negated on purpose: an incomparable pair (NaN bound) is empty.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        fn is_empty(&self) -> bool {
            !(self.start < self.end)
        }
    }

    impl<T: SampleUniform + PartialOrd> SampleRange<T> for RangeInclusive<T> {
        fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
            let (start, end) = self.into_inner();
            T::sample_single_inclusive(start, end, rng)
        }
        // Negated on purpose: an incomparable pair (NaN bound) is empty.
        #[allow(clippy::neg_cmp_op_on_partial_ord)]
        fn is_empty(&self) -> bool {
            !(self.start() <= self.end())
        }
    }

    /// Lemire-style widening-multiply rejection sampling, exactly as in
    /// rand 0.8's `UniformInt` (`$u_large` = the type's own width for
    /// 32/64-bit types).
    macro_rules! uniform_int_impl {
        ($ty:ty, $unsigned:ty, $u_large:ty, $wide:ty) => {
            impl SampleUniform for $ty {
                fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    assert!(low < high, "sample_single: low >= high");
                    Self::sample_single_inclusive(low, high - 1, rng)
                }

                fn sample_single_inclusive<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    rng: &mut R,
                ) -> Self {
                    assert!(low <= high, "sample_single_inclusive: low > high");
                    let range = (high as $unsigned)
                        .wrapping_sub(low as $unsigned)
                        .wrapping_add(1) as $u_large;
                    if range == 0 {
                        // The full type range: every word is a valid sample.
                        return rng.gen::<$u_large>() as $ty;
                    }
                    let zone = (range << range.leading_zeros()).wrapping_sub(1);
                    loop {
                        let v: $u_large = rng.gen();
                        let wide = (v as $wide) * (range as $wide);
                        let hi = (wide >> <$u_large>::BITS) as $u_large;
                        let lo = wide as $u_large;
                        if lo <= zone {
                            return low.wrapping_add(hi as $ty);
                        }
                    }
                }
            }
        };
    }

    uniform_int_impl! { u32, u32, u32, u64 }
    uniform_int_impl! { i32, u32, u32, u64 }
    uniform_int_impl! { u64, u64, u64, u128 }
    uniform_int_impl! { i64, u64, u64, u128 }
    uniform_int_impl! { usize, usize, u64, u128 }
    uniform_int_impl! { isize, usize, u64, u128 }

    /// Float sampling via a `[1, 2)` mantissa fill, as in rand 0.8's
    /// `UniformFloat::sample_single`.
    macro_rules! uniform_float_impl {
        ($ty:ty, $uty:ty, $bits_to_discard:expr, $exponent_bits:expr) => {
            impl SampleUniform for $ty {
                fn sample_single<R: RngCore + ?Sized>(low: Self, high: Self, rng: &mut R) -> Self {
                    debug_assert!(low < high, "sample_single: low >= high");
                    let scale = high - low;
                    let offset = low - scale;
                    let fraction = rng.gen::<$uty>() >> $bits_to_discard;
                    let value1_2 = <$ty>::from_bits(fraction | $exponent_bits);
                    value1_2 * scale + offset
                }

                fn sample_single_inclusive<R: RngCore + ?Sized>(
                    low: Self,
                    high: Self,
                    rng: &mut R,
                ) -> Self {
                    Self::sample_single(low, high, rng)
                }
            }
        };
    }

    uniform_float_impl! { f32, u32, 32 - 23, 127u32 << 23 }
    uniform_float_impl! { f64, u64, 64 - 52, 1023u64 << 52 }
}
