//! Vendored stand-in for the `serde` derive markers used by this
//! workspace.
//!
//! The build environment has no crates-io access, so the real `serde`
//! cannot be fetched. The workspace only uses `#[derive(Serialize,
//! Deserialize)]` as forward-looking markers — nothing actually
//! serializes — so the traits here are empty markers with blanket impls
//! and the derives (from the companion `serde_derive` stub) expand to
//! nothing. Swapping the real serde back in requires no source changes.

/// Marker for types that would be serializable with the real serde.
pub trait Serialize {}

impl<T: ?Sized> Serialize for T {}

/// Marker for types that would be deserializable with the real serde.
pub trait Deserialize<'de>: Sized {}

impl<'de, T> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};

#[cfg(test)]
mod tests {
    #[test]
    fn blanket_impls_cover_everything() {
        fn assert_serialize<T: crate::Serialize>() {}
        fn assert_deserialize<T: for<'de> crate::Deserialize<'de>>() {}
        assert_serialize::<Vec<u8>>();
        assert_deserialize::<String>();
    }
}
